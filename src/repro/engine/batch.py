"""Batch replay tier: bulk column scans for hook-free traces.

The third kernel tier (generic loop -> specialized scalar kernels ->
this module), applied to the fully hookless configuration that
dominates the ``none``/baseline matrix cells: no instruction feed, no
access observers, no prefetch hooks, no sampler, static branch
predictor, lean memory path.  Those flags imply **demand-only**
traffic, and demand-only traffic makes the *entire hierarchy's
structural behaviour* a pure function of the access sequence: which
accesses hit at each level, which line every miss evicts, whether each
victim is dirty, which DRAM row each request opens, and every shadow-tag
outcome are all decided by LRU geometry and access order alone — only
the *latencies* (MSHR stalls, DRAM queue stalls, bank/bus contention)
depend on timing.

So the tier splits the work the way the paper splits prefetching:

* **Plan (pay once per trace x geometry)** — :func:`_build_plan` fuses
  the derived columns into per-instruction dispatch classes and
  effective operands with vectorized numpy scans over the compiled
  trace's canonical arrays, then walks only the memory positions (the
  trace's precomputed segment events) through dict-based models of L1,
  L2, L3, the L2 shadow tags, and the DRAM row buffers.  The walk
  classifies every access (L1 hit / L2 hit / L3 hit / DRAM), links each
  hit to the fill that produced its line, precomputes every victim and
  its dirtiness, every writeback's DRAM row class, and every level's
  hit/miss/eviction/writeback totals, per-line footprints, and
  pollution counts.  The plan is memoized on ``CompiledTrace._plans``
  keyed by the full structural geometry (cache shapes, ALU latency,
  DRAM mapping and row timings).
* **Replay (execute cheaply every cell)** — :func:`_run_batch` retires
  instructions through a six-way class dispatch with no dict probes, no
  per-access object allocation, and no hierarchy calls at all.  The
  miss leg is the batch sibling of ``Hierarchy._demand_miss``: it
  re-runs only the *timing* arithmetic — the exact ``_MshrFile``
  acquire/register algebra at L1 and L2, the DRAM channel-queue
  drain/stall and bank/bus bookkeeping of ``Dram.read``/``write`` —
  against flat plan arrays, keeping per-fill ready times in plain lists
  (``l2_ready``/``l3_ready``) indexed by allocation ordinal instead of
  ``CacheLine`` objects.  Fills to a resident line only ever *lower*
  its ready time (``Cache.fill`` semantics), so a min-update per fill
  reproduces ``fill_time`` exactly.

Bit-identity is the contract, exactly as for the scalar kernels: the
plan reproduces every structural decision of
:class:`~repro.memory.cache.Cache` (one use-counter bump per lookup-hit
or fill, first-minimum LRU victim, dirty-on-store, no last-use touch on
fill-to-resident), :class:`~repro.memory.shadow.ShadowTagStore`, and
:class:`~repro.memory.dram.Dram`'s row-buffer transitions; the replay
loop reproduces the generated scalar kernel's issue/commit arithmetic
and the hierarchy's timing algebra line for line.
``tests/test_kernels.py`` plus the bench's in-run ``batch`` parity
section pin it.  ``REPRO_KERNEL=scalar`` disables only this tier
(keeping the scalar specialized kernels) — the comparator the bench's
``batch.speedup_vs_scalar`` measures against — while
``REPRO_KERNEL=generic`` still disables all specialization.

Eligibility is deliberately conservative: any deviation — warm core or
hierarchy state, subclassed hierarchy/cache/shadow/MSHR/DRAM
components, DRAM telemetry attached, missing numpy — falls back to the
scalar tier silently (the variant name on ``SimulationResult.kernel``
records which tier actually ran).

Segmented batch replay (the ``segmented+...`` variants) extends the
tier across hook boundaries for the *hooked* leanmem/static-BP cells —
the paper's actual ``bop``/``tpc`` prefetchers.  Prefetches perturb the
cache and DRAM state, so the hook-free plan above is impossible there:
which accesses hit, which victims leave, and which DRAM rows open all
depend on what the prefetcher did.  The segmented split is therefore:

* **Plan (pay once per trace x L1 geometry)** — :func:`_build_segment_plan`
  precomputes only what stays a pure function of the trace: the fused
  per-instruction dispatch classes and effective operands (the
  vectorized hook-free stretches between the trace's persisted segment
  events), the flat per-event columns (pc/mPC/addr/line/value), and the
  shadow-L1 outcome per demand access (shadow tags see only demand
  traffic, so their whole story is trace-determined even under
  prefetching).
* **Replay (every cell)** — a generated kernel (:func:`_segment_source`,
  compiled and memoized per hook/policy/geometry shape like
  ``repro.engine.kernel``) retires the hook-free stretches through the
  same tight class-dispatch loop as :func:`_run_batch` and executes a
  *scalar island* at each segment event: the L1 hit leg, the full
  demand-miss leg, and the entire prefetch path run against a
  virtualized hierarchy — flat ``[fill_time, dirty, prefetched, used,
  component]`` entries in recency-ordered per-set dicts (dict order is
  exact LRU order), the ``_MshrFile``/``Dram`` algebra inline — with
  zero per-access object allocation, dead hook branches absent from
  the emitted source, and composite hook forwarders devirtualized to
  their component methods.
  Hooks (``observe_instruction``, ``observe_access``, ``on_access``,
  ``on_fill``, ``on_prefetch_hit``) are called at exactly the positions
  and with exactly the :class:`~repro.core.base.AccessEvent` payloads
  of the scalar kernels, so prefetcher state is handed off bit-exactly
  at every stretch/island boundary.

Selection upgrades any ``fast+...+leanmem+staticbp`` variant (sampler
absent) whose segment-event coverage fraction is sparse enough
(:func:`segment_max_coverage`, default 0.95, ``REPRO_SEGMENT_COVERAGE``
override); an all-event trace degrades to the pure scalar kernel.
``REPRO_KERNEL=scalar`` disables this tier together with the batch
tier.  Both tiers memoize their plans on ``CompiledTrace._plans``
(``plan_builds``/``plan_cache_hits`` kernel counters, mirrored into
``repro metrics``).
"""

from __future__ import annotations

import os
import weakref
from collections import Counter

from repro.log import get_logger
from repro.isa.trace import (
    DISP_ALU,
    DISP_BR_COND,
    DISP_BR_UNCOND,
    DISP_LOAD,
    DISP_OTHER,
    DISP_STORE,
    CompiledTrace,
)

BATCH_FLAGS = (False, False, False, False, False, True, True)
"""The :func:`repro.engine.kernel.kernel_flags` tuple this tier serves:
``fast+leanmem+staticbp`` with every hook absent."""

BATCH_VARIANT = "batch+leanmem+staticbp"

_FAR = 1 << 62
"""Empty-pending sentinel (mirrors ``_MshrFile._NO_PENDING`` and
``Dram._NO_PENDING``), doubling as the not-yet-filled ready-time
sentinel: the first min-update of a fresh allocation assigns it."""


class BatchPlan:
    """Precomputed replay schedule for one (trace, geometry) pair.

    The ``cls``/``src1``/``src2``/``dst``/``aux`` lists are
    per-instruction and are consumed zipped, one tuple per retired
    instruction.  ``aux`` is class-overloaded: the completion latency
    for register-only instructions, the producing L1-miss ordinal for
    L1 hits (indexing ``fill_times`` at replay), the miss ordinal
    itself for L1 misses (indexing the ``m_*`` schedules).  All plain
    lists — the replay loop never touches numpy.

    Per L1-miss schedules (index = miss ordinal):

    ``m_path``
        0 = L2 hit, 1 = L3 hit, 2 = DRAM read.
    ``m_a``
        Path-overloaded: the L2 allocation ordinal whose ready time the
        L2 hit reads, the L3 allocation ordinal for an L3 hit, or the
        DRAM read ordinal (indexing ``r_*``).
    ``m_l2fill``
        Allocation ordinal of the demand fill into L2 (-1 on an L2
        hit — no fill happens).
    ``m_wb2``
        L2 allocation ordinal min-updated by this miss's dirty
        L1-victim writeback, or -1 (clean or no victim).
    ``m_nw`` / ``m_nc3``
        How many entries of the flat ``w_*`` (DRAM writeback) and
        ``c3_inst`` (cascaded L3 ready min-update) streams this miss
        consumes; misses replay strictly in ordinal order, so the
        replay loop walks both streams with cursors.

    Flat DRAM read schedule (index = read ordinal): ``r_access`` (the
    precomputed row-class access latency), ``r_bank``, ``r_ch``, and
    ``r_l3inst`` (the L3 allocation the completing fill creates).  Flat
    writeback schedule: ``w_access``/``w_bank``/``w_ch``, in exact
    issue order (demand-L3-victim, then L2-fill-cascade victim, then
    L1-writeback-cascade victim).
    """

    __slots__ = (
        "__weakref__",
        "cls", "src1", "src2", "dst", "aux", "miss_pc",
        "m_path", "m_a", "m_l2fill", "m_wb2", "m_nw", "m_nc3",
        "r_access", "r_bank", "r_ch", "r_l3inst",
        "w_access", "w_bank", "w_ch", "c3_inst",
        "n_mem", "n_hits", "n_miss", "n_l2_inst", "n_l3_inst",
        "evictions", "writebacks",
        "loads", "stores", "branches", "mispredicts",
        "miss_pcs", "miss_lines",
        "l2_hits", "l2_misses", "l2_evictions", "l2_writebacks",
        "l3_hits", "l3_misses", "l3_evictions", "l3_writebacks",
        "dram_writes", "row_hits", "row_empty", "row_conflicts",
        "pollution_l2", "miss_lines_l2",
    )


# Per-instruction dispatch classes.  "Simple" covers every instruction
# that only reads/writes the register scoreboard: ALU ops, correctly
# predicted conditional branches, unconditional branches, CALL/RET/OTHER.
_CLS_SIMPLE = 0
_CLS_LOAD_HIT = 1
_CLS_STORE_HIT = 2
_CLS_LOAD_MISS = 3
_CLS_STORE_MISS = 4
_CLS_BP_MISS = 5


def plan_key(core) -> tuple:
    """The structural geometry the plan depends on.

    Latencies, burst, queue capacity, and MSHR counts are *timing*
    knobs — the replay loop reads them fresh from the hierarchy on
    every run — so they stay out of the key.
    """
    hierarchy = core.hierarchy
    l1, l2, l3 = hierarchy.l1d, hierarchy.l2, hierarchy.l3
    cfg = hierarchy.dram.config
    return (
        l1.num_sets, l1.ways, core._alu_latency,
        l2.num_sets, l2.ways, l3.num_sets, l3.ways,
        cfg.channels, cfg.ranks_per_channel, cfg.banks_per_rank,
        cfg.lines_per_row, cfg.t_rcd, cfg.t_rp, cfg.t_cas,
    )


def _build_plan(trace: CompiledTrace, key: tuple) -> BatchPlan:
    import numpy as np

    (l1_num_sets, l1_ways, alu_latency,
     l2_num_sets, l2_ways, l3_num_sets, l3_ways,
     channels, ranks_per_channel, banks_per_rank,
     lines_per_row, t_rcd, t_rp, t_cas) = key

    (pc_a, _opc, _addr, _value, dst_a, src1_a, src2_a,
     _taken, _target, _ras) = trace.array_columns()
    line_a, _mpc, disp_a, bp_a = trace.derived_arrays()
    n = len(disp_a)

    # Effective operands per dispatch arm, exactly as the scalar kernel
    # reads them: ALU/store/cond-branch check src1+src2, loads only
    # src1, unconditional branches only src2, OTHER nothing; only ALU
    # (guarded) and loads write a destination.
    b_src1 = np.where(disp_a == DISP_BR_UNCOND, src2_a, src1_a)
    b_src1 = np.where(disp_a == DISP_OTHER, -1, b_src1)
    no_src2 = ((disp_a == DISP_LOAD) | (disp_a == DISP_BR_UNCOND)
               | (disp_a == DISP_OTHER))
    b_src2 = np.where(no_src2, -1, src2_a)
    b_dst = np.where((disp_a == DISP_ALU) | (disp_a == DISP_LOAD),
                     dst_a, -1)
    b_lat = np.where(disp_a == DISP_ALU, alu_latency, 1)

    cls = np.zeros(n, dtype=np.int64)
    cls[(disp_a == DISP_BR_COND) & (bp_a != 0)] = _CLS_BP_MISS

    # The memory accesses are the memory-typed subset of the trace's
    # precomputed segment events.
    events = trace.segment_events()
    mem_pos = events[disp_a[events] <= DISP_STORE]
    is_store = disp_a[mem_pos] == DISP_STORE

    # ------------------------------------------------------------------
    # Hierarchy walk over memory positions only.  Mirrors
    # Cache.lookup/fill at every level under demand-only traffic:
    # exactly one use-counter bump per lookup-hit or fill (lookup
    # misses bump nothing, fills to a resident line bump the counter
    # but never touch last_use), first-minimum last_use victim (unique
    # minima — the counters are strictly increasing), dirty set by
    # store hits, allocate-on-store, or writeback fills.
    # Entry: [allocation ordinal, dirty, last_use, line_addr].
    # ------------------------------------------------------------------
    lines = line_a[mem_pos].tolist()
    store_flags = is_store.tolist()
    mem_pc = pc_a[mem_pos].tolist()
    l1_mask = l1_num_sets - 1
    l2_mask = l2_num_sets - 1
    l3_mask = l3_num_sets - 1
    l1_sets: list[dict] = [dict() for _ in range(l1_num_sets)]
    l2_sets: list[dict] = [dict() for _ in range(l2_num_sets)]
    l3_sets: list[dict] = [dict() for _ in range(l3_num_sets)]
    # Shadow L2 has L2's geometry.  The shadow L1 needs no model at
    # all: under demand-only traffic it holds exactly what the real L1
    # holds, so shadow_l1_hit is always False (pollution_misses_l1
    # stays 0) and every L1 miss reaches the shadow L2.
    shadow_sets: list[dict] = [dict() for _ in range(l2_num_sets)]
    banks_per_channel = ranks_per_channel * banks_per_rank
    rows_div = banks_per_channel * lines_per_row
    bank_row: list = [None] * (channels * banks_per_channel)

    hit_flags = []
    mem_aux: list[int] = []
    miss_pc: list[int] = []
    m_path: list[int] = []
    m_a: list[int] = []
    m_l2fill: list[int] = []
    m_wb2: list[int] = []
    m_nw: list[int] = []
    m_nc3: list[int] = []
    r_access: list[int] = []
    r_bank: list[int] = []
    r_ch: list[int] = []
    r_l3inst: list[int] = []
    w_access: list[int] = []
    w_bank: list[int] = []
    w_ch: list[int] = []
    c3_inst: list[int] = []
    miss_pcs: Counter = Counter()
    miss_lines: Counter = Counter()
    miss_lines_l2: Counter = Counter()
    use = 0
    l2_use = 0
    l3_use = 0
    l2_next = 0
    l3_next = 0
    evictions = 0
    writebacks = 0
    l2_hits = 0
    l2_misses = 0
    l2_evictions = 0
    l2_writebacks = 0
    l3_hits = 0
    l3_misses = 0
    l3_evictions = 0
    l3_writebacks = 0
    row_hits = 0
    row_empty = 0
    row_conflicts = 0
    pollution_l2 = 0
    n_hits = 0
    k = 0

    def emit_write(wline: int) -> None:
        # Dram.write row-class transition (write access constants have
        # no t_cas on the empty/conflict legs).
        nonlocal row_hits, row_empty, row_conflicts
        ch = wline % channels
        rest = wline // channels
        bank = ch * banks_per_channel + rest % banks_per_channel
        row = rest // rows_div
        open_row = bank_row[bank]
        if open_row == row:
            w_access.append(t_cas)
            row_hits += 1
        elif open_row is None:
            w_access.append(t_rcd)
            row_empty += 1
        else:
            w_access.append(t_rp + t_rcd)
            row_conflicts += 1
        bank_row[bank] = row
        w_bank.append(bank)
        w_ch.append(ch)

    def fill_l3_writeback(wline: int) -> None:
        # _fill_l3(line, fill_time, dirty=True) from a writeback; the
        # replay loop applies the recorded min-update at the producing
        # miss's fill time (Cache.fill only ever lowers fill_time).
        nonlocal l3_use, l3_next, l3_evictions, l3_writebacks
        l3_use += 1
        target = l3_sets[wline & l3_mask]
        entry = target.get(wline)
        if entry is not None:
            entry[1] = True
            c3_inst.append(entry[0])
            return
        if len(target) >= l3_ways:
            victim = None
            for candidate in target.values():
                if victim is None or candidate[2] < victim[2]:
                    victim = candidate
            del target[victim[3]]
            l3_evictions += 1
            if victim[1]:
                l3_writebacks += 1
                emit_write(victim[3])
        inst = l3_next
        l3_next += 1
        target[wline] = [inst, True, l3_use, wline]
        c3_inst.append(inst)

    def fill_l2_writeback(wline: int) -> int:
        # The L1 dirty-victim writeback: _fill_l2(line, fill, dirty=True).
        nonlocal l2_use, l2_next, l2_evictions, l2_writebacks
        l2_use += 1
        target = l2_sets[wline & l2_mask]
        entry = target.get(wline)
        if entry is not None:
            entry[1] = True
            return entry[0]
        if len(target) >= l2_ways:
            victim = None
            for candidate in target.values():
                if victim is None or candidate[2] < victim[2]:
                    victim = candidate
            del target[victim[3]]
            l2_evictions += 1
            if victim[1]:
                l2_writebacks += 1
                fill_l3_writeback(victim[3])
        inst = l2_next
        l2_next += 1
        target[wline] = [inst, True, l2_use, wline]
        return inst

    for line, is_wr, pc in zip(lines, store_flags, mem_pc):
        use += 1
        target_set = l1_sets[line & l1_mask]
        entry = target_set.get(line)
        if entry is not None:
            entry[2] = use
            if is_wr:
                entry[1] = True
            hit_flags.append(True)
            mem_aux.append(entry[0])
            n_hits += 1
            continue
        # --- L1 miss: the structural half of Hierarchy._demand_miss.
        hit_flags.append(False)
        mem_aux.append(k)
        miss_pc.append(pc)
        miss_lines[line] += 1
        if not is_wr:
            miss_pcs[pc] += 1
        nw0 = len(w_access)
        nc0 = len(c3_inst)
        # Shadow L2 access (every L1 miss reaches it, see above).
        s2 = shadow_sets[line & l2_mask]
        sl2_hit = line in s2
        if sl2_hit:
            del s2[line]
        elif len(s2) >= l2_ways:
            s2.pop(next(iter(s2)))
        s2[line] = None
        # L2 lookup.
        l2set = l2_sets[line & l2_mask]
        entry2 = l2set.get(line)
        if entry2 is not None:
            l2_use += 1
            entry2[2] = l2_use
            l2_hits += 1
            m_path.append(0)
            m_a.append(entry2[0])
            m_l2fill.append(-1)
        else:
            l2_misses += 1
            miss_lines_l2[line] += 1
            if sl2_hit:
                pollution_l2 += 1
            # L3 leg.
            l3set = l3_sets[line & l3_mask]
            entry3 = l3set.get(line)
            if entry3 is not None:
                l3_use += 1
                entry3[2] = l3_use
                l3_hits += 1
                m_path.append(1)
                m_a.append(entry3[0])
            else:
                l3_misses += 1
                m_path.append(2)
                m_a.append(len(r_access))
                # Dram.read row-class transition.
                ch = line % channels
                rest = line // channels
                bank = ch * banks_per_channel + rest % banks_per_channel
                row = rest // rows_div
                open_row = bank_row[bank]
                if open_row == row:
                    r_access.append(t_cas)
                    row_hits += 1
                elif open_row is None:
                    r_access.append(t_rcd + t_cas)
                    row_empty += 1
                else:
                    r_access.append(t_rp + t_rcd + t_cas)
                    row_conflicts += 1
                bank_row[bank] = row
                r_bank.append(bank)
                r_ch.append(ch)
                # Demand fill into L3 (fresh — the lookup just missed).
                l3_use += 1
                if len(l3set) >= l3_ways:
                    victim = None
                    for candidate in l3set.values():
                        if victim is None or candidate[2] < victim[2]:
                            victim = candidate
                    del l3set[victim[3]]
                    l3_evictions += 1
                    if victim[1]:
                        l3_writebacks += 1
                        emit_write(victim[3])
                inst3 = l3_next
                l3_next += 1
                l3set[line] = [inst3, False, l3_use, line]
                r_l3inst.append(inst3)
            # Demand fill into L2 (fresh).
            l2_use += 1
            if len(l2set) >= l2_ways:
                victim = None
                for candidate in l2set.values():
                    if victim is None or candidate[2] < victim[2]:
                        victim = candidate
                del l2set[victim[3]]
                l2_evictions += 1
                if victim[1]:
                    l2_writebacks += 1
                    fill_l3_writeback(victim[3])
            inst2 = l2_next
            l2_next += 1
            l2set[line] = [inst2, False, l2_use, line]
            m_l2fill.append(inst2)
        # L1 fill: victim scan, then the dirty-victim writeback into L2
        # (scalar order: _access_l2 first, then _fill_l1's writeback).
        if len(target_set) >= l1_ways:
            victim = None
            for candidate in target_set.values():
                if victim is None or candidate[2] < victim[2]:
                    victim = candidate
            del target_set[victim[3]]
            evictions += 1
            if victim[1]:
                writebacks += 1
                m_wb2.append(fill_l2_writeback(victim[3]))
            else:
                m_wb2.append(-1)
        else:
            m_wb2.append(-1)
        target_set[line] = [k, bool(is_wr), use, line]
        m_nw.append(len(w_access) - nw0)
        m_nc3.append(len(c3_inst) - nc0)
        k += 1

    b_aux = b_lat.astype(np.int64)
    if len(mem_pos):
        hits = np.asarray(hit_flags, dtype=np.bool_)
        cls[mem_pos] = np.where(
            hits,
            np.where(is_store, _CLS_STORE_HIT, _CLS_LOAD_HIT),
            np.where(is_store, _CLS_STORE_MISS, _CLS_LOAD_MISS),
        )
        b_aux[mem_pos] = np.asarray(mem_aux, dtype=np.int64)

    plan = BatchPlan()
    plan.cls = cls.tolist()
    plan.src1 = b_src1.tolist()
    plan.src2 = b_src2.tolist()
    plan.dst = b_dst.tolist()
    plan.aux = b_aux.tolist()
    plan.miss_pc = miss_pc
    plan.m_path = m_path
    plan.m_a = m_a
    plan.m_l2fill = m_l2fill
    plan.m_wb2 = m_wb2
    plan.m_nw = m_nw
    plan.m_nc3 = m_nc3
    plan.r_access = r_access
    plan.r_bank = r_bank
    plan.r_ch = r_ch
    plan.r_l3inst = r_l3inst
    plan.w_access = w_access
    plan.w_bank = w_bank
    plan.w_ch = w_ch
    plan.c3_inst = c3_inst
    plan.n_mem = len(lines)
    plan.n_hits = n_hits
    plan.n_miss = k
    plan.n_l2_inst = l2_next
    plan.n_l3_inst = l3_next
    plan.evictions = evictions
    plan.writebacks = writebacks
    plan.loads = int(np.count_nonzero(disp_a == DISP_LOAD))
    plan.stores = int(np.count_nonzero(disp_a == DISP_STORE))
    plan.branches = int(np.count_nonzero(
        (disp_a == DISP_BR_COND) | (disp_a == DISP_BR_UNCOND)))
    plan.mispredicts = int(np.count_nonzero(
        (disp_a == DISP_BR_COND) & (bp_a != 0)))
    plan.miss_pcs = miss_pcs
    plan.miss_lines = miss_lines
    plan.l2_hits = l2_hits
    plan.l2_misses = l2_misses
    plan.l2_evictions = l2_evictions
    plan.l2_writebacks = l2_writebacks
    plan.l3_hits = l3_hits
    plan.l3_misses = l3_misses
    plan.l3_evictions = l3_evictions
    plan.l3_writebacks = l3_writebacks
    plan.dram_writes = len(w_access)
    plan.row_hits = row_hits
    plan.row_empty = row_empty
    plan.row_conflicts = row_conflicts
    plan.pollution_l2 = pollution_l2
    plan.miss_lines_l2 = miss_lines_l2
    return plan


#: Process-wide plan pool keyed by (trace name, trace length, plan
#: geometry key).  Trace content is deterministic per name within a
#: builder-code version, so two *distinct* trace objects carrying the
#: same workload — a fork-inherited memo and a later shared-memory
#: attach, or a cache reload — share one plan instead of rebuilding it.
#: Weak values: a plan lives only while some trace's ``_plans`` dict
#: (a strong ref) still holds it.
_PLAN_REGISTRY: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()


def _get_plan(trace: CompiledTrace, key: tuple, builder, variant: str):
    """Plan memoizer shared by both tiers.

    Plans live on ``CompiledTrace._plans`` keyed by structural geometry,
    so every cell of a sweep replaying the same (warm, process-shared)
    trace under the same geometry reuses one plan, backed by the
    process-wide :data:`_PLAN_REGISTRY` so a re-materialized trace of
    the same workload (shared-memory attach, cache reload) does not
    force a rebuild.  ``plan_builds`` / ``plan_cache_hits`` count the
    split (kernel counters, mirrored into the fabric metrics as
    ``kernel.plan_builds`` / ``kernel.plan_cache_hits`` for
    ``repro metrics``).
    """
    from repro.engine.kernel import _count

    plan = trace._plans.get(key)
    if plan is None:
        registry_key = (trace.name, len(trace), key)
        plan = _PLAN_REGISTRY.get(registry_key)
        if plan is not None:
            _count("plan_cache_hits")
            trace._plans[key] = plan
            return plan
        _count(f"compiled.{variant}")
        _count("plan_builds")
        plan = builder(trace, key)
        trace._plans[key] = plan
        _PLAN_REGISTRY[registry_key] = plan
    else:
        _count("plan_cache_hits")
    return plan


def _stock_cold_hierarchy(core):
    """The stock, cold :class:`~repro.memory.hierarchy.Hierarchy` behind
    ``core`` — or ``None`` when anything deviates and the scalar tier
    must run instead: warm core state, subclassed hierarchy / cache /
    shadow / MSHR / DRAM components, DRAM telemetry attached, resident
    lines or prior traffic, or numpy missing.  Shared eligibility leg of
    :func:`maybe_run_batch` and :func:`maybe_run_segmented`."""
    if (core._index or core._fetch_cycle or core._fetch_slot
            or core._last_commit_time or core._commits_at_time):
        return None
    from repro.memory.cache import Cache
    from repro.memory.dram import Dram
    from repro.memory.hierarchy import Hierarchy, _MshrFile
    from repro.memory.shadow import ShadowTagStore

    hierarchy = core.hierarchy
    if type(hierarchy) is not Hierarchy:
        return None
    l1 = hierarchy.l1d
    if (type(l1) is not Cache or type(hierarchy.l2) is not Cache
            or type(hierarchy.l3) is not Cache
            or type(hierarchy.shadow_l1) is not ShadowTagStore
            or type(hierarchy.shadow_l2) is not ShadowTagStore
            or type(hierarchy._l1_mshrs) is not _MshrFile
            or type(hierarchy._l2_mshrs) is not _MshrFile):
        return None
    dram = hierarchy.dram
    if type(dram) is not Dram or dram.telemetry is not None:
        return None
    dram_stats = dram.stats
    if (l1._use_counter or hierarchy.l2._use_counter
            or hierarchy.l3._use_counter
            or dram_stats.reads or dram_stats.writes
            or hierarchy.prefetch_stats.issued
            or hierarchy._l1_mshrs._pending
            or hierarchy._l2_mshrs._pending
            or hierarchy.pollution_misses_l1
            or hierarchy.pollution_misses_l2):
        return None
    try:
        import numpy  # noqa: F401
    except ImportError:
        return None
    return hierarchy


def maybe_run_batch(core, flags: tuple):
    """Run ``core`` through the batch tier, or return ``None`` to let
    the scalar specialized kernel handle it.

    Eligibility: exactly the hookless flag tuple, ``REPRO_KERNEL`` not
    set to ``scalar`` (nor ``generic`` — that path never gets here), a
    cold core on a cold stock :class:`~repro.memory.hierarchy.Hierarchy`
    (stock caches/shadow tags/MSHRs/DRAM, no DRAM telemetry, nothing
    resident, no prior traffic), and numpy importable.
    """
    if flags != BATCH_FLAGS:
        return None
    from repro.engine.kernel import GENERIC, KERNEL_ENV, SCALAR, _count

    if os.environ.get(KERNEL_ENV) in (GENERIC, SCALAR):
        return None
    trace = core.trace
    if not isinstance(trace, CompiledTrace):
        return None
    if _stock_cold_hierarchy(core) is None:
        return None
    plan = _get_plan(trace, plan_key(core), _build_plan, BATCH_VARIANT)
    _count(f"selected.{BATCH_VARIANT}")
    core.kernel_variant = BATCH_VARIANT
    return _run_batch(core, plan)


def _run_batch(core, plan: BatchPlan):
    """Retire the whole trace against ``plan``.

    Every line of the issue/commit arithmetic mirrors the generated
    scalar kernel (see ``repro.engine.kernel.kernel_source``); the
    ``miss_fill`` closure mirrors the *timing* algebra of
    ``Hierarchy._demand_miss`` -> ``_access_l2`` -> ``_access_l3`` ->
    ``Dram.read``/``write`` with every structural decision read from
    the plan.  Deferring a miss's writebacks and cascaded ready-time
    min-updates to after its demand leg is exact: writes never touch
    the channel queues, min-updates never raise a ready time, and no
    other DRAM/MSHR operation runs between their true position and the
    end of the miss.
    """
    stats = core.stats
    hierarchy = core.hierarchy
    l1_stats = hierarchy.l1d.stats
    l1_latency = hierarchy.l1d.hit_latency
    l2_lat = hierarchy.l2.hit_latency
    l3_lat = hierarchy.l3.hit_latency
    dram = hierarchy.dram
    cfg = dram.config
    burst = cfg.burst
    q_cap = cfg.queue_capacity
    l1_cap = hierarchy._l1_mshrs.capacity
    l2_cap = hierarchy._l2_mshrs.capacity
    miss_latency_by_pc = stats.miss_latency_by_pc

    width = core._width
    branch_penalty = core._branch_penalty
    rob_size = core._rob_size
    commit_ring = core._commit_ring
    reg_ready = core._reg_ready

    miss_pc = plan.miss_pc
    m_path = plan.m_path
    m_a = plan.m_a
    m_l2fill = plan.m_l2fill
    m_wb2 = plan.m_wb2
    m_nw = plan.m_nw
    m_nc3 = plan.m_nc3
    r_access = plan.r_access
    r_bank = plan.r_bank
    r_ch = plan.r_ch
    r_l3inst = plan.r_l3inst
    w_access = plan.w_access
    w_bank = plan.w_bank
    w_ch = plan.w_ch
    c3_inst = plan.c3_inst

    far = _FAR
    # fill_times[k] is the fill completion of L1-miss ordinal k — what
    # Cache.lookup would have read back as the L1 line's ``fill_time``
    # on a later hit (fills record it; hits never change it).  The
    # l2/l3 arrays are the same thing per *allocation* at those levels,
    # min-updated on every fill (sentinel-initialized, so a fresh
    # allocation's first update is an assignment).
    fill_times = [0] * plan.n_miss
    l2_ready = [far] * plan.n_l2_inst
    l3_ready = [far] * plan.n_l3_inst
    bank_ready = [0] * (cfg.channels * cfg.ranks_per_channel
                        * cfg.banks_per_rank)
    bus_free = [0] * cfg.channels
    queues: list[list[int]] = [[] for _ in range(cfg.channels)]
    q_min = [far] * cfg.channels
    l1_pending: list[int] = []
    l1_min = far
    l2_pending: list[int] = []
    l2_min = far
    w_cursor = 0
    c3_cursor = 0
    queue_stalls = 0

    def miss_fill(aux: int, now: int) -> int:
        nonlocal l1_min, l2_min, w_cursor, c3_cursor, queue_stalls
        # L1 MSHR acquire (exact _MshrFile.acquire_demand algebra).
        if l1_min <= now:
            l1_pending[:] = [x for x in l1_pending if x > now]
            l1_min = min(l1_pending, default=far)
        if len(l1_pending) >= l1_cap:
            now = min(l1_pending)
            l1_pending[:] = [x for x in l1_pending if x > now]
            l1_min = min(l1_pending, default=far)
        t = now + l1_latency
        path = m_path[aux]
        if path == 0:
            # L2 hit: ready = max(line fill time, arrival) + latency.
            ready = l2_ready[m_a[aux]]
            fill = (ready if ready > t else t) + l2_lat
        else:
            # L2 MSHR acquire.
            if l2_min <= t:
                l2_pending[:] = [x for x in l2_pending if x > t]
                l2_min = min(l2_pending, default=far)
            if len(l2_pending) >= l2_cap:
                t = min(l2_pending)
                l2_pending[:] = [x for x in l2_pending if x > t]
                l2_min = min(l2_pending, default=far)
            t2 = t + l2_lat
            if path == 1:
                ready = l3_ready[m_a[aux]]
                fill = (ready if ready > t2 else t2) + l3_lat
            else:
                # DRAM read (exact Dram._admit/read algebra).
                d = m_a[aux]
                t3 = t2 + l3_lat
                ch = r_ch[d]
                q = queues[ch]
                if q_min[ch] <= t3:
                    q[:] = [x for x in q if x > t3]
                    q_min[ch] = min(q, default=far)
                if len(q) >= q_cap:
                    start = min(q)
                    queue_stalls += 1
                    q[:] = [x for x in q if x > start]
                    q_min[ch] = min(q, default=far)
                else:
                    start = t3
                bank = r_bank[d]
                ready = bank_ready[bank]
                if ready > start:
                    start = ready
                data_start = start + r_access[d]
                ready = bus_free[ch]
                if ready > data_start:
                    data_start = ready
                fill = data_start + burst
                bank_ready[bank] = data_start
                bus_free[ch] = fill
                q.append(fill)
                if fill < q_min[ch]:
                    q_min[ch] = fill
                inst = r_l3inst[d]
                if fill < l3_ready[inst]:
                    l3_ready[inst] = fill
            # Demand fill into L2 + L2 MSHR register.
            inst = m_l2fill[aux]
            if fill < l2_ready[inst]:
                l2_ready[inst] = fill
            l2_pending.append(fill)
            if fill < l2_min:
                l2_min = fill
        # Deferred writebacks (DRAM bank/bus only; queues untouched).
        nw = m_nw[aux]
        if nw:
            stop = w_cursor + nw
            for i in range(w_cursor, stop):
                bank = w_bank[i]
                start = bank_ready[bank]
                if start < fill:
                    start = fill
                data_start = start + w_access[i]
                ch = w_ch[i]
                ready = bus_free[ch]
                if ready > data_start:
                    data_start = ready
                bank_ready[bank] = data_start
                bus_free[ch] = data_start + burst
            w_cursor = stop
        # L1 dirty-victim writeback into L2, cascaded L3 min-updates.
        inst = m_wb2[aux]
        if inst >= 0 and fill < l2_ready[inst]:
            l2_ready[inst] = fill
        nc = m_nc3[aux]
        if nc:
            stop = c3_cursor + nc
            for i in range(c3_cursor, stop):
                inst = c3_inst[i]
                if fill < l3_ready[inst]:
                    l3_ready[inst] = fill
            c3_cursor = stop
        # L1 MSHR register.
        l1_pending.append(fill)
        if fill < l1_min:
            l1_min = fill
        return fill

    n = len(plan.cls)
    fetch_cycle = 0
    fetch_slot = 0
    last_commit = 0
    commits_at_time = 0
    load_latency_total = 0
    merges = 0
    rob_slot = rob_size - 1
    for cls, s1, s2, dst, aux in zip(plan.cls, plan.src1, plan.src2,
                                     plan.dst, plan.aux):
        if fetch_slot >= width:
            fetch_cycle += 1
            fetch_slot = 0
        fetch_slot += 1
        rob_slot += 1
        if rob_slot == rob_size:
            rob_slot = 0
        rob_free = commit_ring[rob_slot]
        if rob_free > fetch_cycle:
            dispatch = rob_free
            fetch_cycle = rob_free
            fetch_slot = 1
        else:
            dispatch = fetch_cycle
        if cls == 0:  # register-only: ALU / predicted branch / other
            issue = dispatch
            if s1 >= 0:
                ready = reg_ready[s1]
                if ready > issue:
                    issue = ready
            if s2 >= 0:
                ready = reg_ready[s2]
                if ready > issue:
                    issue = ready
            complete = issue + aux
            if dst >= 0:
                reg_ready[dst] = complete
        elif cls == 1:  # load, L1 hit
            issue = dispatch
            if s1 >= 0:
                ready = reg_ready[s1]
                if ready > issue:
                    issue = ready
            ready = fill_times[aux]
            if ready > issue:
                merges += 1
            else:
                ready = issue
            complete = ready + l1_latency
            load_latency_total += complete - issue
            reg_ready[dst] = complete
        elif cls == 2:  # store, L1 hit
            issue = dispatch
            if s1 >= 0:
                ready = reg_ready[s1]
                if ready > issue:
                    issue = ready
            if s2 >= 0:
                ready = reg_ready[s2]
                if ready > issue:
                    issue = ready
            if fill_times[aux] > issue:
                merges += 1
            complete = issue + 1
        elif cls == 3:  # load, L1 miss
            issue = dispatch
            if s1 >= 0:
                ready = reg_ready[s1]
                if ready > issue:
                    issue = ready
            fill_time = miss_fill(aux, issue)
            fill_times[aux] = fill_time
            latency = fill_time - issue
            load_latency_total += latency
            miss_latency_by_pc[miss_pc[aux]] += latency
            complete = fill_time
            reg_ready[dst] = complete
        elif cls == 4:  # store, L1 miss (completes at issue + 1)
            issue = dispatch
            if s1 >= 0:
                ready = reg_ready[s1]
                if ready > issue:
                    issue = ready
            if s2 >= 0:
                ready = reg_ready[s2]
                if ready > issue:
                    issue = ready
            fill_times[aux] = miss_fill(aux, issue)
            complete = issue + 1
        else:  # cls == 5: statically mispredicted conditional branch
            issue = dispatch
            if s1 >= 0:
                ready = reg_ready[s1]
                if ready > issue:
                    issue = ready
            if s2 >= 0:
                ready = reg_ready[s2]
                if ready > issue:
                    issue = ready
            complete = issue + 1
            fetch_cycle = complete + branch_penalty
            fetch_slot = 0
        if complete > last_commit:
            last_commit = complete
            commits_at_time = 1
        else:
            commits_at_time += 1
            if commits_at_time > width:
                last_commit += 1
                commits_at_time = 1
        commit_ring[rob_slot] = last_commit

    core._index = n
    core._fetch_cycle = fetch_cycle
    core._fetch_slot = fetch_slot
    core._last_commit_time = last_commit
    core._commits_at_time = commits_at_time
    stats.instructions += n
    stats.cycles = last_commit
    stats.loads += plan.loads
    stats.stores += plan.stores
    stats.branches += plan.branches
    stats.mispredicts += plan.mispredicts
    stats.load_latency_total += load_latency_total
    stats.miss_pcs.update(plan.miss_pcs)
    l1_stats.demand_accesses += plan.n_mem
    l1_stats.demand_hits += plan.n_hits
    l1_stats.demand_misses += plan.n_miss
    l1_stats.mshr_merges += merges
    l1_stats.evictions += plan.evictions
    l1_stats.writebacks += plan.writebacks
    l2_stats = hierarchy.l2.stats
    l2_stats.demand_accesses += plan.n_miss
    l2_stats.demand_hits += plan.l2_hits
    l2_stats.demand_misses += plan.l2_misses
    l2_stats.evictions += plan.l2_evictions
    l2_stats.writebacks += plan.l2_writebacks
    l3_stats = hierarchy.l3.stats
    l3_stats.demand_accesses += plan.l2_misses
    l3_stats.demand_hits += plan.l3_hits
    l3_stats.demand_misses += plan.l3_misses
    l3_stats.evictions += plan.l3_evictions
    l3_stats.writebacks += plan.l3_writebacks
    dram_stats = dram.stats
    dram_stats.reads += plan.l3_misses
    dram_stats.writes += plan.dram_writes
    dram_stats.row_hits += plan.row_hits
    dram_stats.row_empty += plan.row_empty
    dram_stats.row_conflicts += plan.row_conflicts
    dram_stats.demand_queue_stalls += queue_stalls
    hierarchy.pollution_misses_l2 += plan.pollution_l2
    if hierarchy.collect_footprint:
        hierarchy.miss_lines_l1.update(plan.miss_lines)
        hierarchy.miss_lines_l2.update(plan.miss_lines_l2)
    return stats


# ----------------------------------------------------------------------
# Segmented batch replay: the hooked-cell tier.
# ----------------------------------------------------------------------

SEGMENT_PREFIX = "segmented"

SEGMENT_COVERAGE_ENV = "REPRO_SEGMENT_COVERAGE"

SEGMENT_MAX_COVERAGE = 0.95
"""Default ceiling on the segment-event coverage fraction
(``len(segment_events()) / len(trace)``).  Above it nearly every
instruction is a scalar island, the vectorized stretches degenerate,
and the plain scalar kernel is the better (and simpler) choice — the
all-instructions-are-events edge case degrades there by construction."""

# Segmented per-instruction dispatch classes.  Unlike the hook-free
# tier, hit/miss is decided live (prefetches change it), so loads and
# stores are single classes.
_SEG_SIMPLE = 0
_SEG_LOAD = 1
_SEG_STORE = 2
_SEG_BP_MISS = 3


def segment_variant(flags: tuple) -> str:
    """Kernel attribution name for the segmented tier: the scalar
    variant's hook spelling with the ``fast`` prefix swapped, e.g.
    ``segmented+instr+observe+issue+leanmem+staticbp``."""
    from repro.engine.kernel import variant_name

    return SEGMENT_PREFIX + variant_name(flags)[4:]


_COVERAGE_WARNED: set = set()
"""Raw ``REPRO_SEGMENT_COVERAGE`` values already warned about.
:func:`segment_max_coverage` runs once per cell, so a sweep with a bad
value would otherwise repeat the same warning hundreds of times."""


def segment_max_coverage() -> float:
    raw = os.environ.get(SEGMENT_COVERAGE_ENV)
    if not raw:
        return SEGMENT_MAX_COVERAGE
    try:
        value = float(raw)
    except ValueError:
        if raw not in _COVERAGE_WARNED:
            _COVERAGE_WARNED.add(raw)
            get_logger("engine").warn(
                f"ignoring non-numeric {SEGMENT_COVERAGE_ENV}",
                value=raw, using=SEGMENT_MAX_COVERAGE,
            )
        return SEGMENT_MAX_COVERAGE
    clamped = min(max(value, 0.0), 1.0)
    if clamped != value and raw not in _COVERAGE_WARNED:
        # A typo like 9.5 would otherwise enable the segmented tier on
        # every cell, island-dense ones included.
        _COVERAGE_WARNED.add(raw)
        get_logger("engine").warn(
            f"clamping out-of-range {SEGMENT_COVERAGE_ENV}",
            value=raw, using=clamped,
        )
    return clamped


class SegmentPlan:
    """Precomputed replay schedule for one (trace, L1 geometry) pair.

    Only trace-pure facts live here — everything the prefetcher can
    perturb stays live in the generated segmented kernel.  ``rows``
    holds one ``(cls, src1, src2, dst, lat)`` tuple per instruction
    (unpacked directly in the replay loop's ``for`` target — cheaper
    than a five-way zip); ``ev_rows`` holds one ``(pc, addr, line,
    mpc, value, sh1)`` tuple per memory access in trace order,
    consumed by a running iterator (loads and stores are exactly the
    memory-typed segment events, so no index column is needed).
    ``sh1`` is the shadow-L1 outcome per access: shadow tags see only
    demand traffic, so their whole hit/miss story is trace-determined
    even under prefetching.
    """

    __slots__ = (
        "__weakref__",
        "rows", "ev_rows",
        "n_mem", "loads", "stores", "branches", "mispredicts",
        "coverage",
    )


def segment_plan_key(core) -> tuple:
    """Structural geometry the segment plan depends on: only the L1
    shape (for the shadow-L1 walk) and the ALU latency (folded into the
    per-instruction latency column).  Everything else — L2/L3/DRAM
    geometry, MSHR counts, latencies — is replayed live."""
    l1 = core.hierarchy.l1d
    return (SEGMENT_PREFIX, l1.num_sets, l1.ways, core._alu_latency)


def _build_segment_plan(trace: CompiledTrace, key: tuple) -> SegmentPlan:
    import numpy as np

    _tag, l1_num_sets, l1_ways, alu_latency = key

    (pc_a, _opc, addr_a, value_a, dst_a, src1_a, src2_a,
     _taken, _target, _ras) = trace.array_columns()
    line_a, mpc_a, disp_a, bp_a = trace.derived_arrays()
    n = len(disp_a)

    # Effective operands, same fusion as _build_plan (and the same
    # reading the scalar kernel does per dispatch arm).
    b_src1 = np.where(disp_a == DISP_BR_UNCOND, src2_a, src1_a)
    b_src1 = np.where(disp_a == DISP_OTHER, -1, b_src1)
    no_src2 = ((disp_a == DISP_LOAD) | (disp_a == DISP_BR_UNCOND)
               | (disp_a == DISP_OTHER))
    b_src2 = np.where(no_src2, -1, src2_a)
    b_dst = np.where((disp_a == DISP_ALU) | (disp_a == DISP_LOAD),
                     dst_a, -1)
    b_lat = np.where(disp_a == DISP_ALU, alu_latency, 1)

    cls = np.zeros(n, dtype=np.int64)
    cls[(disp_a == DISP_BR_COND) & (bp_a != 0)] = _SEG_BP_MISS
    cls[disp_a == DISP_LOAD] = _SEG_LOAD
    cls[disp_a == DISP_STORE] = _SEG_STORE

    events = trace.segment_events()
    mem_pos = events[disp_a[events] <= DISP_STORE]
    ev_line_a = mem_pos_lines = line_a[mem_pos]
    ev_lines = mem_pos_lines.tolist()

    # Shadow-L1 walk (exact ShadowTagStore.access over every demand
    # access, hit or miss — the scalar kernel updates the shadow on
    # both legs and only *reads* the outcome on a miss).
    sh_mask = l1_num_sets - 1
    sh_sets: list[dict] = [dict() for _ in range(l1_num_sets)]
    sh1: list[bool] = []
    append = sh1.append
    for line in ev_lines:
        s = sh_sets[line & sh_mask]
        if line in s:
            del s[line]
            append(True)
        else:
            append(False)
            if len(s) >= l1_ways:
                del s[next(iter(s))]
        s[line] = None

    plan = SegmentPlan()
    plan.rows = list(zip(cls.tolist(), b_src1.tolist(), b_src2.tolist(),
                         b_dst.tolist(), b_lat.tolist()))
    # One tuple per access: a single unpack in the replay arms instead
    # of six indexed column reads (.tolist() first, so the tuples hold
    # plain ints that compare/hash at C speed in the set dicts).
    plan.ev_rows = list(zip(
        pc_a[mem_pos].tolist(), addr_a[mem_pos].tolist(), ev_lines,
        mpc_a[mem_pos].tolist(), value_a[mem_pos].tolist(), sh1))
    plan.n_mem = len(ev_lines)
    plan.loads = int(np.count_nonzero(disp_a == DISP_LOAD))
    plan.stores = int(np.count_nonzero(disp_a == DISP_STORE))
    plan.branches = int(np.count_nonzero(
        (disp_a == DISP_BR_COND) | (disp_a == DISP_BR_UNCOND)))
    plan.mispredicts = int(np.count_nonzero(
        (disp_a == DISP_BR_COND) & (bp_a != 0)))
    plan.coverage = len(events) / n if n else 1.0
    del ev_line_a
    return plan


def maybe_run_segmented(core, flags: tuple):
    """Run ``core`` through the segmented tier, or return ``None`` to
    let the scalar specialized kernel handle it.

    Eligibility: a leanmem/static-BP flag tuple with at least one hook
    present and no sampler (the sampler reads live per-instruction
    stats; hook-free tuples belong to :func:`maybe_run_batch`),
    ``REPRO_KERNEL`` not ``scalar``/``generic``, the same cold stock
    hierarchy as the batch tier, and a segment-event coverage fraction
    at most :func:`segment_max_coverage`.
    """
    if len(flags) != 7 or flags == BATCH_FLAGS:
        return None
    instr, oa, ona, of, samp, sbp, lean = flags
    if samp or not sbp or not lean:
        return None
    from repro.engine.kernel import GENERIC, KERNEL_ENV, SCALAR, _count

    if os.environ.get(KERNEL_ENV) in (GENERIC, SCALAR):
        return None
    trace = core.trace
    if not isinstance(trace, CompiledTrace):
        return None
    if _stock_cold_hierarchy(core) is None:
        return None
    n = len(trace)
    if not n or len(trace.segment_events()) / n > segment_max_coverage():
        return None
    variant = segment_variant(flags)
    plan = _get_plan(trace, segment_plan_key(core), _build_segment_plan,
                     variant)
    _count(f"selected.{variant}")
    core.kernel_variant = variant

    # Resolve the kernel specialization key: devirtualized composite
    # hooks, DRAM drop policy, and power-of-two DRAM geometry.
    from repro.core.composite import CompositePrefetcher

    feeds = None
    nfeeds = 0
    if instr:
        hook = core._observe_instruction
        if (getattr(hook, "__func__", None)
                is CompositePrefetcher.observe_instruction):
            feeds = hook.__self__._instruction_feeds
            nfeeds = len(feeds)
            if nfeeds > 4:  # keep the kernel-cache fanout bounded
                feeds, nfeeds = None, -1
        else:
            nfeeds = -1
    route = None
    if ona:
        hook = core._on_access
        if getattr(hook, "__func__", None) is CompositePrefetcher.on_access:
            route = hook.__self__.coordinator.route
        else:
            route = hook

    from repro.memory.dram import DropPolicy

    cfg = core.hierarchy.dram.config
    low_first = cfg.drop_policy is DropPolicy.LOW_PRIORITY_FIRST
    bpc = cfg.ranks_per_channel * cfg.banks_per_rank
    rows_div = bpc * cfg.lines_per_row
    pow2 = all(v > 0 and v & (v - 1) == 0
               for v in (cfg.channels, bpc, rows_div))

    kernel = _segment_kernel(instr, oa, ona, of, low_first, pow2, nfeeds)
    return kernel(core, plan, feeds, route)


_SEG_KERNELS: dict[tuple, object] = {}


def _segment_kernel(instr: bool, oa: bool, ona: bool, of: bool,
                    low_first: bool, pow2: bool, nfeeds: int):
    """Compile (and memoize) one segmented replay kernel.

    Like ``repro.engine.kernel``, the loop is generated with dead hook
    branches absent; the kernel is additionally specialized on the DRAM
    drop policy (RANDOM queues hold bare completion times; the
    LOW_PRIORITY_FIRST victim scan needs full entries), on
    power-of-two channel/bank/row geometry (shift/mask address math),
    and on the number of devirtualized instruction feeds (``nfeeds``;
    -1 calls the composite's forwarder per instruction instead).
    """
    key = (instr, oa, ona, of, low_first, pow2, nfeeds)
    fn = _SEG_KERNELS.get(key)
    if fn is None:
        from repro.core.base import AccessEvent
        from repro.memory.dram import LOW_PRIORITY_COMPONENTS

        source = _segment_source(*key)
        namespace = {
            "_FAR": _FAR,
            "AccessEvent": AccessEvent,
            "LOW_PRIORITY_COMPONENTS": LOW_PRIORITY_COMPONENTS,
        }
        exec(compile(source, f"<segmented kernel {key}>", "exec"),
             namespace)
        fn = _SEG_KERNELS[key] = namespace["run_segmented"]
    return fn


def _segment_source(instr: bool, oa: bool, ona: bool, of: bool,
                    low_first: bool, pow2: bool, nfeeds: int) -> str:
    """Source of a specialized segmented replay loop.

    The emitted code retires the whole trace with live hooks: the
    stretch loop mirrors the generated scalar kernel's issue/commit
    arithmetic (and ``_run_batch``'s rolling ROB slot); each scalar
    island mirrors, effect for effect, ``Cache.lookup``/``fill``,
    ``_MshrFile``, ``ShadowTagStore.access`` (precomputed),
    ``Hierarchy._demand_miss``/``_access_l2``/``_access_l3``/
    ``prefetch``, and ``Dram.read``/``write`` — against a virtualized
    hierarchy of flat ``[fill_time, dirty, prefetched, used,
    component]`` entries in recency-ordered per-set dicts (dict order
    is LRU order because the scalar tier's use counter is strictly
    increasing, so victim selection is ``next(iter(set))``).  Demand
    misses and the demand DRAM read are inlined straight into the
    load/store arms; ``do_prefetch`` keeps its early-return shape as a
    closure.  Hook call positions and ``AccessEvent`` payloads are
    exactly the scalar kernel's, so the prefetcher cannot distinguish
    the tiers.  Stats accumulate in locals and write back once at the
    end, matching the scalar kernels' deferred-accumulator contract.
    """
    build_event = oa or ona
    lines: list[str] = []
    emit = lines.append

    def addr_math(ind: str, p: str, line: str) -> None:
        # Dram address decomposition (channel, bank, row) for one line.
        if pow2:
            emit(f"{ind}{p}ch = {line} & ch_mask")
            emit(f"{ind}{p}rest = {line} >> ch_shift")
            emit(f"{ind}{p}bank = ({p}ch << bpc_shift) + "
                 f"({p}rest & bpc_mask)")
            emit(f"{ind}{p}row = {p}rest >> row_shift")
        else:
            emit(f"{ind}{p}ch = {line} % channels")
            emit(f"{ind}{p}rest = {line} // channels")
            emit(f"{ind}{p}bank = {p}ch * banks_per_channel + "
                 f"{p}rest % banks_per_channel")
            emit(f"{ind}{p}row = {p}rest // rows_div")

    def dram_read_tail(ind: str) -> None:
        # Bank/row/bus algebra shared by the inlined demand and
        # prefetch reads; enters with dstart/dbank/drow/dch set and
        # leaves the completion in fill_time.
        emit(f"{ind}dready = bank_ready[dbank]")
        emit(f"{ind}if dready > dstart:")
        emit(f"{ind}    dstart = dready")
        emit(f"{ind}drow_open = bank_row[dbank]")
        emit(f"{ind}if drow_open == drow:")
        emit(f"{ind}    daccess = t_cas")
        emit(f"{ind}    row_hits += 1")
        emit(f"{ind}elif drow_open is None:")
        emit(f"{ind}    daccess = t_rcd_cas")
        emit(f"{ind}    row_empty += 1")
        emit(f"{ind}else:")
        emit(f"{ind}    daccess = t_rp_rcd_cas")
        emit(f"{ind}    row_conflicts += 1")
        emit(f"{ind}ddata = dstart + daccess")
        emit(f"{ind}dready = bus_free[dch]")
        emit(f"{ind}if dready > ddata:")
        emit(f"{ind}    ddata = dready")
        emit(f"{ind}fill_time = ddata + burst")
        emit(f"{ind}bank_row[dbank] = drow")
        emit(f"{ind}bank_ready[dbank] = ddata")
        emit(f"{ind}bus_free[dch] = fill_time")
        emit(f"{ind}dq.append(fill_time)")
        emit(f"{ind}if fill_time < q_min[dch]:")
        emit(f"{ind}    q_min[dch] = fill_time")
        emit(f"{ind}d_reads += 1")

    def hook_block(ind: str, ev_args: str, flag: str,
                   level_expr: str) -> None:
        # The scalar kernel's hook sequence at one access: event (when
        # any event hook is live), on_prefetch_hit, observers, issue
        # requests, per-request on_fill.
        if build_event:
            emit(f"{ind}event = AccessEvent({ev_args})")
            emit(f"{ind}if {flag}:")
            emit(f"{ind}    on_prefetch_hit(line, {level_expr})")
            if oa:
                emit(f"{ind}observe_access(event)")
            if ona:
                emit(f"{ind}requests = on_access(event)")
                emit(f"{ind}if requests:")
                emit(f"{ind}    for request in requests:")
                if of:
                    emit(f"{ind}        if do_prefetch(request.line, "
                         f"issue, request.target_level, "
                         f"request.component):")
                    emit(f"{ind}            on_fill(request.line, "
                         f"request.target_level, prefetched=True)")
                else:
                    emit(f"{ind}        do_prefetch(request.line, "
                         f"issue, request.target_level, "
                         f"request.component)")
        else:
            emit(f"{ind}if {flag}:")
            emit(f"{ind}    on_prefetch_hit(line, {level_expr})")

    def demand_miss_block(ind: str, is_write: str) -> None:
        # Hierarchy._demand_miss + _access_l2 + _access_l3 with the
        # primary fills inlined (each preceding lookup or probe proves
        # the line absent, so the resident leg is skipped).  Sets
        # fill_time, level, served, component; tset1 is the L1 set the
        # arm's lookup already indexed.
        emit(f"{ind}mnow = issue")
        emit(f"{ind}l1_misses += 1")
        emit(f"{ind}if collect_fp:")
        emit(f"{ind}    miss_lines_l1[line] += 1")
        emit(f"{ind}if sh1:")
        emit(f"{ind}    pollution_l1 += 1")
        emit(f"{ind}if l1_min_p <= mnow:")
        emit(f"{ind}    l1_pending[:] = [x for x in l1_pending "
             f"if x > mnow]")
        emit(f"{ind}    l1_min_p = min(l1_pending, default=far)")
        emit(f"{ind}if len(l1_pending) >= l1_cap:")
        emit(f"{ind}    mnow = min(l1_pending)")
        emit(f"{ind}    l1_pending[:] = [x for x in l1_pending "
             f"if x > mnow]")
        emit(f"{ind}    l1_min_p = min(l1_pending, default=far)")
        emit(f"{ind}t = mnow + l1_latency")
        emit(f"{ind}l2_acc += 1")
        emit(f"{ind}tset2 = l2_sets[line & l2_mask]")
        emit(f"{ind}entry = tset2.get(line)")
        emit(f"{ind}served = False")
        emit(f"{ind}if entry is not None:")
        emit(f"{ind}    del tset2[line]")
        emit(f"{ind}    tset2[line] = entry")
        emit(f"{ind}    served = entry[2] and not entry[3]")
        emit(f"{ind}    if served:")
        emit(f"{ind}        entry[3] = True")
        emit(f"{ind}if not sh1:")
        emit(f"{ind}    s2 = sh2_sets[line & sh2_mask]")
        emit(f"{ind}    if line in s2:")
        emit(f"{ind}        del s2[line]")
        emit(f"{ind}        sh2_hit = True")
        emit(f"{ind}    else:")
        emit(f"{ind}        sh2_hit = False")
        emit(f"{ind}        if len(s2) >= sh2_ways:")
        emit(f"{ind}            del s2[next(iter(s2))]")
        emit(f"{ind}    s2[line] = None")
        emit(f"{ind}if entry is not None:")
        emit(f"{ind}    l2_hits += 1")
        emit(f"{ind}    ready = entry[0]")
        emit(f"{ind}    if served:")
        emit(f"{ind}        l2_useful += 1")
        emit(f"{ind}        if ready > t:")
        emit(f"{ind}            l2_late += 1")
        emit(f"{ind}    if ready < t:")
        emit(f"{ind}        ready = t")
        emit(f"{ind}    fill_time = ready + l2_lat")
        emit(f"{ind}    level = 2")
        emit(f"{ind}    component = entry[4]")
        emit(f"{ind}else:")
        i2 = ind + "    "
        emit(f"{i2}l2_missc += 1")
        emit(f"{i2}if collect_fp:")
        emit(f"{i2}    miss_lines_l2[line] += 1")
        emit(f"{i2}if not sh1 and sh2_hit:")
        emit(f"{i2}    pollution_l2 += 1")
        emit(f"{i2}if l2_min_p <= t:")
        emit(f"{i2}    l2_pending[:] = [x for x in l2_pending "
             f"if x > t]")
        emit(f"{i2}    l2_min_p = min(l2_pending, default=far)")
        emit(f"{i2}if len(l2_pending) >= l2_cap:")
        emit(f"{i2}    t = min(l2_pending)")
        emit(f"{i2}    l2_pending[:] = [x for x in l2_pending "
             f"if x > t]")
        emit(f"{i2}    l2_min_p = min(l2_pending, default=far)")
        emit(f"{i2}now3 = t + l2_lat")
        emit(f"{i2}l3_acc += 1")
        emit(f"{i2}tset3 = l3_sets[line & l3_mask]")
        emit(f"{i2}entry3 = tset3.get(line)")
        emit(f"{i2}if entry3 is not None:")
        emit(f"{i2}    del tset3[line]")
        emit(f"{i2}    tset3[line] = entry3")
        emit(f"{i2}    l3_hits += 1")
        emit(f"{i2}    if entry3[2] and not entry3[3]:")
        emit(f"{i2}        entry3[3] = True")
        emit(f"{i2}        l3_useful += 1")
        emit(f"{i2}    ready = entry3[0]")
        emit(f"{i2}    if ready < now3:")
        emit(f"{i2}        ready = now3")
        emit(f"{i2}    fill_time = ready + l3_lat")
        emit(f"{i2}    level = 3")
        emit(f"{i2}else:")
        i3 = i2 + "    "
        emit(f"{i3}l3_missc += 1")
        if low_first:
            # Demand reads are never dropped, so no -1 check.
            emit(f"{i3}fill_time = dram_read(line, now3 + l3_lat, "
                 f"False, None)")
        else:
            emit(f"{i3}dnow = now3 + l3_lat")
            addr_math(i3, "d", "line")
            emit(f"{i3}dq = queues[dch]")
            emit(f"{i3}if q_min[dch] <= dnow:")
            emit(f"{i3}    dq[:] = [c for c in dq if c > dnow]")
            emit(f"{i3}    q_min[dch] = min(dq, default=far)")
            emit(f"{i3}dstart = dnow")
            emit(f"{i3}if len(dq) >= q_cap:")
            emit(f"{i3}    dstart = min(dq)")
            emit(f"{i3}    d_stalls += 1")
            emit(f"{i3}    dq[:] = [c for c in dq if c > dstart]")
            emit(f"{i3}    q_min[dch] = min(dq, default=far)")
            dram_read_tail(i3)
        emit(f"{i3}if len(tset3) >= l3_ways:")
        emit(f"{i3}    vline = next(iter(tset3))")
        emit(f"{i3}    victim = tset3.pop(vline)")
        emit(f"{i3}    l3_evic += 1")
        emit(f"{i3}    if victim[2] and not victim[3]:")
        emit(f"{i3}        l3_pfe += 1")
        emit(f"{i3}    if victim[1]:")
        emit(f"{i3}        l3_wb += 1")
        emit(f"{i3}        dram_write(vline, fill_time)")
        emit(f"{i3}tset3[line] = [fill_time, False, False, False, "
             f"None]")
        emit(f"{i3}level = 4")
        emit(f"{i2}if len(tset2) >= l2_ways:")
        emit(f"{i2}    vline = next(iter(tset2))")
        emit(f"{i2}    victim = tset2.pop(vline)")
        emit(f"{i2}    l2_evic += 1")
        emit(f"{i2}    if victim[2] and not victim[3]:")
        emit(f"{i2}        l2_pfe += 1")
        emit(f"{i2}    if victim[1]:")
        emit(f"{i2}        l2_wb += 1")
        emit(f"{i2}        fill_l3(vline, fill_time, True, False, "
             f"None)")
        emit(f"{i2}tset2[line] = [fill_time, False, False, False, "
             f"None]")
        emit(f"{i2}l2_pending.append(fill_time)")
        emit(f"{i2}if fill_time < l2_min_p:")
        emit(f"{i2}    l2_min_p = fill_time")
        emit(f"{i2}component = None")
        emit(f"{ind}if len(tset1) >= l1_ways:")
        emit(f"{ind}    vline = next(iter(tset1))")
        emit(f"{ind}    victim = tset1.pop(vline)")
        emit(f"{ind}    l1_evic += 1")
        emit(f"{ind}    if victim[2] and not victim[3]:")
        emit(f"{ind}        l1_pfe += 1")
        emit(f"{ind}    if victim[1]:")
        emit(f"{ind}        l1_wb += 1")
        emit(f"{ind}        fill_l2(vline, fill_time, True, False, "
             f"None)")
        emit(f"{ind}tset1[line] = [fill_time, {is_write}, False, "
             f"False, None]")
        emit(f"{ind}l1_pending.append(fill_time)")
        emit(f"{ind}if fill_time < l1_min_p:")
        emit(f"{ind}    l1_min_p = fill_time")

    def hit_stats_block(ind: str) -> None:
        # The scalar leanmem kernel's L1-hit stat legs, after the
        # recency bump.
        emit(f"{ind}first_use = cl[2] and not cl[3]")
        emit(f"{ind}if first_use:")
        emit(f"{ind}    cl[3] = True")
        emit(f"{ind}l1_hits += 1")
        emit(f"{ind}ready = cl[0]")
        emit(f"{ind}if first_use:")
        emit(f"{ind}    l1_useful += 1")
        emit(f"{ind}    if ready > issue:")
        emit(f"{ind}        l1_late += 1")
        emit(f"{ind}elif ready > issue and not cl[2]:")
        emit(f"{ind}    l1_merges += 1")

    # ------------------------------------------------------------------
    # Prologue: hoists, virtual state, accumulators.
    # ------------------------------------------------------------------
    emit("def run_segmented(core, plan, feeds, route):")
    emit('    """Generated segmented replay; see _segment_source."""')
    emit("    stats = core.stats")
    emit("    hierarchy = core.hierarchy")
    emit("    l1 = hierarchy.l1d")
    emit("    l2 = hierarchy.l2")
    emit("    l3 = hierarchy.l3")
    emit("    dram = hierarchy.dram")
    emit("    cfg = dram.config")
    emit("    l1_latency = l1.hit_latency")
    emit("    l2_lat = l2.hit_latency")
    emit("    l3_lat = l3.hit_latency")
    emit("    l1_mask = l1._set_mask")
    emit("    l2_mask = l2._set_mask")
    emit("    l3_mask = l3._set_mask")
    emit("    l1_ways = l1.ways")
    emit("    l2_ways = l2.ways")
    emit("    l3_ways = l3.ways")
    emit("    sh2_mask = hierarchy.shadow_l2._set_mask")
    emit("    sh2_ways = hierarchy.shadow_l2.ways")
    emit("    l1_cap = hierarchy._l1_mshrs.capacity")
    emit("    l2_cap = hierarchy._l2_mshrs.capacity")
    emit("    burst = cfg.burst")
    emit("    q_cap = cfg.queue_capacity")
    emit("    channels = cfg.channels")
    emit("    banks_per_channel = cfg.ranks_per_channel * "
         "cfg.banks_per_rank")
    emit("    rows_div = banks_per_channel * cfg.lines_per_row")
    emit("    t_cas = cfg.t_cas")
    emit("    t_rcd_cas = cfg.t_rcd + t_cas")
    emit("    t_rp_rcd_cas = cfg.t_rp + t_rcd_cas")
    emit("    t_rcd = cfg.t_rcd")
    emit("    t_rp_rcd = cfg.t_rp + t_rcd")
    if pow2:
        emit("    ch_mask = channels - 1")
        emit("    ch_shift = ch_mask.bit_length()")
        emit("    bpc_mask = banks_per_channel - 1")
        emit("    bpc_shift = bpc_mask.bit_length()")
        emit("    row_shift = (rows_div - 1).bit_length()")
    if low_first:
        emit("    low_components = LOW_PRIORITY_COMPONENTS")
    emit("    collect_fp = hierarchy.collect_footprint")
    emit("    miss_lines_l1 = hierarchy.miss_lines_l1")
    emit("    miss_lines_l2 = hierarchy.miss_lines_l2")
    emit("    attempted_add = hierarchy.attempted_prefetch_lines.add")
    emit("    attempted_by_component = hierarchy.attempted_by_component")
    emit("    by_component = hierarchy.prefetch_stats.by_component")
    emit("    miss_pcs = stats.miss_pcs")
    emit("    miss_latency_by_pc = stats.miss_latency_by_pc")
    if instr:
        if nfeeds >= 0:
            for k in range(nfeeds):
                emit(f"    feed_{k} = feeds[{k}]")
        else:
            emit("    observe_instruction = core._observe_instruction")
        emit("    records = core.trace.records")
    if oa:
        emit("    observe_access = core._observe_access")
    if ona:
        emit("    on_access = route")
    if of:
        emit("    on_fill = core._on_fill")
    emit("    on_prefetch_hit = core.prefetcher.on_prefetch_hit")
    emit("")
    emit("    far = _FAR")
    emit("    l1_sets = [dict() for _ in range(l1.num_sets)]")
    emit("    l2_sets = [dict() for _ in range(l2.num_sets)]")
    emit("    l3_sets = [dict() for _ in range(l3.num_sets)]")
    emit("    sh2_sets = [dict() for _ in "
         "range(hierarchy.shadow_l2.num_sets)]")
    emit("    l1_pending = []")
    emit("    l1_min_p = far")
    emit("    l2_pending = []")
    emit("    l2_min_p = far")
    emit("    bank_ready = [0] * (channels * banks_per_channel)")
    emit("    bank_row = [None] * (channels * banks_per_channel)")
    emit("    bus_free = [0] * channels")
    emit("    queues = [[] for _ in range(channels)]")
    emit("    q_min = [far] * channels")
    emit("")
    for name in ("l1_hits", "l1_misses", "l1_useful", "l1_late",
                 "l1_merges", "l1_evic", "l1_wb", "l1_pff", "l1_pfe",
                 "l2_acc", "l2_hits", "l2_missc", "l2_useful",
                 "l2_late", "l2_evic", "l2_wb", "l2_pff", "l2_pfe",
                 "l3_acc", "l3_hits", "l3_missc", "l3_useful",
                 "l3_evic", "l3_wb", "l3_pff", "l3_pfe",
                 "d_reads", "d_writes", "row_hits", "row_empty",
                 "row_conflicts", "d_dropped", "d_stalls",
                 "pf_issued", "pf_to_l1", "pf_to_l2", "pf_filtered",
                 "pf_drop_mshr", "pf_drop_dram",
                 "pollution_l1", "pollution_l2"):
        emit(f"    {name} = 0")
    emit("")

    # ------------------------------------------------------------------
    # dram_write (fill-cascade writebacks only).
    # ------------------------------------------------------------------
    emit("    def dram_write(wline, now):")
    emit("        # Dram.write: no queue admission, no t_cas on the")
    emit("        # empty/conflict legs (the write access constants).")
    emit("        nonlocal d_writes, row_hits, row_empty, row_conflicts")
    addr_math("        ", "w", "wline")
    emit("        start = bank_ready[wbank]")
    emit("        if start < now:")
    emit("            start = now")
    emit("        open_row = bank_row[wbank]")
    emit("        if open_row == wrow:")
    emit("            access = t_cas")
    emit("            row_hits += 1")
    emit("        elif open_row is None:")
    emit("            access = t_rcd")
    emit("            row_empty += 1")
    emit("        else:")
    emit("            access = t_rp_rcd")
    emit("            row_conflicts += 1")
    emit("        data_start = start + access")
    emit("        ready = bus_free[wch]")
    emit("        if ready > data_start:")
    emit("            data_start = ready")
    emit("        bank_row[wbank] = wrow")
    emit("        bank_ready[wbank] = data_start")
    emit("        bus_free[wch] = data_start + burst")
    emit("        d_writes += 1")
    emit("")

    if low_first:
        # --------------------------------------------------------------
        # dram_read closure: only the LOW_PRIORITY_FIRST policy needs
        # full queue entries and a victim scan.
        # --------------------------------------------------------------
        emit("    def dram_read(rline, now, is_prefetch, component):")
        emit("        # Dram._admit + Dram.read; -1 = dropped prefetch.")
        emit("        nonlocal d_reads, row_hits, row_empty, \\")
        emit("            row_conflicts, d_dropped, d_stalls")
        addr_math("        ", "r", "rline")
        emit("        q = queues[rch]")
        emit("        if q_min[rch] <= now:")
        emit("            q[:] = [e for e in q if e[0] > now]")
        emit("            q_min[rch] = min((e[0] for e in q), "
             "default=far)")
        emit("        start = now")
        emit("        if len(q) >= q_cap:")
        emit("            if not is_prefetch:")
        emit("                start = min(e[0] for e in q)")
        emit("                d_stalls += 1")
        emit("                q[:] = [e for e in q if e[0] > start]")
        emit("                q_min[rch] = min((e[0] for e in q), "
             "default=far)")
        emit("            elif component in low_components:")
        emit("                d_dropped += 1")
        emit("                return -1")
        emit("            else:")
        emit("                victim = None")
        emit("                for e in q:")
        emit("                    if e[1] and e[2] in low_components:")
        emit("                        victim = e")
        emit("                        break")
        emit("                if victim is None:")
        emit("                    d_dropped += 1")
        emit("                    return -1")
        emit("                q.remove(victim)  # stale q_min is "
             "lazily harmless")
        emit("                d_dropped += 1")
        emit("        ready = bank_ready[rbank]")
        emit("        if ready > start:")
        emit("            start = ready")
        emit("        open_row = bank_row[rbank]")
        emit("        if open_row == rrow:")
        emit("            access = t_cas")
        emit("            row_hits += 1")
        emit("        elif open_row is None:")
        emit("            access = t_rcd_cas")
        emit("            row_empty += 1")
        emit("        else:")
        emit("            access = t_rp_rcd_cas")
        emit("            row_conflicts += 1")
        emit("        data_start = start + access")
        emit("        ready = bus_free[rch]")
        emit("        if ready > data_start:")
        emit("            data_start = ready")
        emit("        completion = data_start + burst")
        emit("        bank_row[rbank] = rrow")
        emit("        bank_ready[rbank] = data_start")
        emit("        bus_free[rch] = completion")
        emit("        q.append((completion, is_prefetch, component))")
        emit("        if completion < q_min[rch]:")
        emit("            q_min[rch] = completion")
        emit("        d_reads += 1")
        emit("        return completion")
        emit("")

    # ------------------------------------------------------------------
    # Writeback-cascade fills: full Cache.fill semantics (the cascaded
    # line may be resident below).  Primary fills are inlined at their
    # call sites instead and skip the resident leg.
    # ------------------------------------------------------------------
    emit("    def fill_l3(fline, fill_time, dirty, prefetched, "
         "component):")
    emit("        nonlocal l3_evic, l3_wb, l3_pfe, l3_pff")
    emit("        tset = l3_sets[fline & l3_mask]")
    emit("        entry = tset.get(fline)")
    emit("        if entry is not None:")
    emit("            if fill_time < entry[0]:")
    emit("                entry[0] = fill_time")
    emit("            if dirty:")
    emit("                entry[1] = True")
    emit("            return")
    emit("        if len(tset) >= l3_ways:")
    emit("            vline = next(iter(tset))")
    emit("            victim = tset.pop(vline)")
    emit("            l3_evic += 1")
    emit("            if victim[2] and not victim[3]:")
    emit("                l3_pfe += 1")
    emit("            if victim[1]:")
    emit("                l3_wb += 1")
    emit("                dram_write(vline, fill_time)")
    emit("        tset[fline] = [fill_time, dirty, prefetched, False, "
         "component]")
    emit("        if prefetched:")
    emit("            l3_pff += 1")
    emit("")
    emit("    def fill_l2(fline, fill_time, dirty, prefetched, "
         "component):")
    emit("        nonlocal l2_evic, l2_wb, l2_pfe, l2_pff")
    emit("        tset = l2_sets[fline & l2_mask]")
    emit("        entry = tset.get(fline)")
    emit("        if entry is not None:")
    emit("            if fill_time < entry[0]:")
    emit("                entry[0] = fill_time")
    emit("            if dirty:")
    emit("                entry[1] = True")
    emit("            return")
    emit("        if len(tset) >= l2_ways:")
    emit("            vline = next(iter(tset))")
    emit("            victim = tset.pop(vline)")
    emit("            l2_evic += 1")
    emit("            if victim[2] and not victim[3]:")
    emit("                l2_pfe += 1")
    emit("            if victim[1]:")
    emit("                l2_wb += 1")
    emit("                fill_l3(vline, fill_time, True, False, None)")
    emit("        tset[fline] = [fill_time, dirty, prefetched, False, "
         "component]")
    emit("        if prefetched:")
    emit("            l2_pff += 1")
    emit("")

    # ------------------------------------------------------------------
    # do_prefetch: Hierarchy.prefetch with _access_l3 and the primary
    # fills inlined; a closure because of the early-return shape.
    # ------------------------------------------------------------------
    emit("    def do_prefetch(pline, now, target_level, component):")
    emit("        nonlocal pf_filtered, pf_drop_mshr, pf_drop_dram, \\")
    emit("            pf_issued, pf_to_l1, pf_to_l2, l1_min_p, "
         "l2_min_p, \\")
    emit("            l1_evic, l1_wb, l1_pfe, l1_pff, l2_evic, l2_wb, "
         "\\")
    emit("            l2_pfe, l2_pff, l3_evic, l3_wb, l3_pfe, l3_pff"
         + ("" if low_first else ", \\"))
    if not low_first:
        emit("            d_reads, d_dropped, row_hits, row_empty, \\")
        emit("            row_conflicts")
    emit("        if target_level == 1:")
    emit("            tset = l1_sets[pline & l1_mask]")
    emit("        elif target_level == 2:")
    emit("            tset = l2_sets[pline & l2_mask]")
    emit("        else:")
    emit("            raise ValueError(")
    emit("                f\"prefetch target must be 1 or 2, got "
         "{target_level}\")")
    emit("        attempted_add(pline)")
    emit("        if component is not None:")
    emit("            per_component = "
         "attempted_by_component.get(component)")
    emit("            if per_component is None:")
    emit("                per_component = "
         "attempted_by_component[component] = set()")
    emit("            per_component.add(pline)")
    emit("        if pline in tset:")
    emit("            pf_filtered += 1")
    emit("            return False")
    emit("        # MSHR try_acquire_prefetch at the target level.")
    emit("        if target_level == 1:")
    emit("            if l1_min_p <= now:")
    emit("                l1_pending[:] = [x for x in l1_pending "
         "if x > now]")
    emit("                l1_min_p = min(l1_pending, default=far)")
    emit("            if len(l1_pending) >= l1_cap:")
    emit("                pf_drop_mshr += 1")
    emit("                return False")
    emit("        else:")
    emit("            if l2_min_p <= now:")
    emit("                l2_pending[:] = [x for x in l2_pending "
         "if x > now]")
    emit("                l2_min_p = min(l2_pending, default=far)")
    emit("            if len(l2_pending) >= l2_cap:")
    emit("                pf_drop_mshr += 1")
    emit("                return False")
    emit("        # Locate the data below the target level.")
    emit("        entry = None")
    emit("        if target_level == 1:")
    emit("            tset2 = l2_sets[pline & l2_mask]")
    emit("            entry = tset2.get(pline)")
    emit("        else:")
    emit("            tset2 = tset")
    emit("        if entry is not None:")
    emit("            # l2.lookup(touch=True): bump, touch, consume")
    emit("            # the first-use flag without counting usefulness.")
    emit("            del tset2[pline]")
    emit("            tset2[pline] = entry")
    emit("            if entry[2] and not entry[3]:")
    emit("                entry[3] = True")
    emit("            ready = entry[0]")
    emit("            if ready < now:")
    emit("                ready = now")
    emit("            fill_time = ready + l2_lat")
    emit("        else:")
    emit("            # _access_l3 (prefetch probes bump/touch/consume")
    emit("            # statlessly).")
    emit("            tset3 = l3_sets[pline & l3_mask]")
    emit("            entry3 = tset3.get(pline)")
    emit("            if entry3 is not None:")
    emit("                del tset3[pline]")
    emit("                tset3[pline] = entry3")
    emit("                if entry3[2] and not entry3[3]:")
    emit("                    entry3[3] = True")
    emit("                ready = entry3[0]")
    emit("                if ready < now:")
    emit("                    ready = now")
    emit("                fill_time = ready + l3_lat")
    emit("            else:")
    if low_first:
        emit("                fill_time = dram_read(pline, "
             "now + l3_lat, True, component)")
        emit("                if fill_time < 0:")
        emit("                    pf_drop_dram += 1")
        emit("                    return False")
    else:
        emit("                dnow = now + l3_lat")
        addr_math("                ", "d", "pline")
        emit("                dq = queues[dch]")
        emit("                if q_min[dch] <= dnow:")
        emit("                    dq[:] = [c for c in dq if c > dnow]")
        emit("                    q_min[dch] = min(dq, default=far)")
        emit("                if len(dq) >= q_cap:")
        emit("                    # RANDOM policy: a full queue sheds")
        emit("                    # every incoming prefetch.")
        emit("                    d_dropped += 1")
        emit("                    pf_drop_dram += 1")
        emit("                    return False")
        emit("                dstart = dnow")
        dram_read_tail("                ")
    emit("                # Primary L3 fill.")
    emit("                if len(tset3) >= l3_ways:")
    emit("                    vline = next(iter(tset3))")
    emit("                    victim = tset3.pop(vline)")
    emit("                    l3_evic += 1")
    emit("                    if victim[2] and not victim[3]:")
    emit("                        l3_pfe += 1")
    emit("                    if victim[1]:")
    emit("                        l3_wb += 1")
    emit("                        dram_write(vline, fill_time)")
    emit("                tset3[pline] = [fill_time, False, True, "
         "False, component]")
    emit("                l3_pff += 1")
    emit("            # Primary L2 fill: for target 1 the locate probe")
    emit("            # missed, for target 2 the filter probe did.")
    emit("            if len(tset2) >= l2_ways:")
    emit("                vline = next(iter(tset2))")
    emit("                victim = tset2.pop(vline)")
    emit("                l2_evic += 1")
    emit("                if victim[2] and not victim[3]:")
    emit("                    l2_pfe += 1")
    emit("                if victim[1]:")
    emit("                    l2_wb += 1")
    emit("                    fill_l3(vline, fill_time, True, False, "
         "None)")
    emit("            tset2[pline] = [fill_time, False, True, False, "
         "component]")
    emit("            l2_pff += 1")
    emit("        if target_level == 1:")
    emit("            # Primary L1 fill (the filter probe missed).")
    emit("            if len(tset) >= l1_ways:")
    emit("                vline = next(iter(tset))")
    emit("                victim = tset.pop(vline)")
    emit("                l1_evic += 1")
    emit("                if victim[2] and not victim[3]:")
    emit("                    l1_pfe += 1")
    emit("                if victim[1]:")
    emit("                    l1_wb += 1")
    emit("                    fill_l2(vline, fill_time, True, False, "
         "None)")
    emit("            tset[pline] = [fill_time, False, True, False, "
         "component]")
    emit("            l1_pff += 1")
    emit("            pf_to_l1 += 1")
    emit("        else:")
    emit("            pf_to_l2 += 1")
    emit("        pf_issued += 1")
    emit("        by_component[component or \"?\"] += 1")
    emit("        if target_level == 1:")
    emit("            l1_pending.append(fill_time)")
    emit("            if fill_time < l1_min_p:")
    emit("                l1_min_p = fill_time")
    emit("        else:")
    emit("            l2_pending.append(fill_time)")
    emit("            if fill_time < l2_min_p:")
    emit("                l2_min_p = fill_time")
    emit("        return True")
    emit("")

    # ------------------------------------------------------------------
    # The stretch/island loop.
    # ------------------------------------------------------------------
    emit("    width = core._width")
    emit("    branch_penalty = core._branch_penalty")
    emit("    rob_size = core._rob_size")
    emit("    commit_ring = core._commit_ring")
    emit("    reg_ready = core._reg_ready")
    emit("    ev_next = iter(plan.ev_rows).__next__")
    emit("    rows = plan.rows")
    emit("    n = len(rows)")
    emit("    fetch_cycle = 0")
    emit("    fetch_slot = 0")
    emit("    last_commit = 0")
    emit("    commits_at_time = 0")
    emit("    load_latency_total = 0")
    emit("    rob_slot = rob_size - 1")
    if instr:
        emit("    for (cls, s1, s2, dst, lat), rec in zip(rows, "
             "records):")
    else:
        emit("    for cls, s1, s2, dst, lat in rows:")
    emit("        if fetch_slot >= width:")
    emit("            fetch_cycle += 1")
    emit("            fetch_slot = 0")
    emit("        fetch_slot += 1")
    emit("        rob_slot += 1")
    emit("        if rob_slot == rob_size:")
    emit("            rob_slot = 0")
    emit("        rob_free = commit_ring[rob_slot]")
    emit("        if rob_free > fetch_cycle:")
    emit("            dispatch = rob_free")
    emit("            fetch_cycle = rob_free")
    emit("            fetch_slot = 1")
    emit("        else:")
    emit("            dispatch = fetch_cycle")
    if instr:
        if nfeeds >= 0:
            for k in range(nfeeds):
                emit(f"        feed_{k}(rec, dispatch)")
        else:
            emit("        observe_instruction(rec, dispatch)")
    emit("        if cls == 0:  # register-only: ALU / predicted "
         "branch / other")
    emit("            issue = dispatch")
    emit("            if s1 >= 0:")
    emit("                ready = reg_ready[s1]")
    emit("                if ready > issue:")
    emit("                    issue = ready")
    emit("            if s2 >= 0:")
    emit("                ready = reg_ready[s2]")
    emit("                if ready > issue:")
    emit("                    issue = ready")
    emit("            complete = issue + lat")
    emit("            if dst >= 0:")
    emit("                reg_ready[dst] = complete")
    emit("        elif cls == 1:  # load")
    emit("            issue = dispatch")
    emit("            if s1 >= 0:")
    emit("                ready = reg_ready[s1]")
    emit("                if ready > issue:")
    emit("                    issue = ready")
    emit("            pc, addr, line, mpc, value, sh1 = ev_next()")
    emit("            tset1 = l1_sets[line & l1_mask]")
    emit("            cl = tset1.get(line)")
    emit("            if cl is not None:")
    emit("                # Inlined L1 hit leg (the scalar leanmem")
    emit("                # kernel's); del+insert is the LRU touch.")
    emit("                del tset1[line]")
    emit("                tset1[line] = cl")
    hit_stats_block("                ")
    emit("                if ready < issue:")
    emit("                    ready = issue")
    emit("                complete = ready + l1_latency")
    emit("                latency = complete - issue")
    emit("                load_latency_total += latency")
    hook_block("                ",
               "issue, pc, mpc, addr, line, True, True, False, "
               "latency, value, dst, first_use, cl[4]",
               "first_use", "1")
    emit("                reg_ready[dst] = complete")
    emit("            else:")
    demand_miss_block("                ", "False")
    emit("                complete = fill_time")
    emit("                latency = complete - issue")
    emit("                load_latency_total += latency")
    emit("                miss_pcs[pc] += 1")
    emit("                miss_latency_by_pc[pc] += latency")
    hook_block("                ",
               "issue, pc, mpc, addr, line, True, False, True, "
               "latency, value, dst, served, component",
               "served", "level")
    if of:
        emit("                on_fill(line, 1)")
    emit("                reg_ready[dst] = complete")
    emit("        elif cls == 2:  # store")
    emit("            issue = dispatch")
    emit("            if s1 >= 0:")
    emit("                ready = reg_ready[s1]")
    emit("                if ready > issue:")
    emit("                    issue = ready")
    emit("            if s2 >= 0:")
    emit("                ready = reg_ready[s2]")
    emit("                if ready > issue:")
    emit("                    issue = ready")
    emit("            pc, addr, line, mpc, value, sh1 = ev_next()")
    emit("            tset1 = l1_sets[line & l1_mask]")
    emit("            cl = tset1.get(line)")
    emit("            if cl is not None:")
    emit("                del tset1[line]")
    emit("                tset1[line] = cl")
    emit("                cl[1] = True")
    hit_stats_block("                ")
    hook_block("                ",
               "issue, pc, mpc, addr, line, False, True, False, "
               "0, 0, -1, first_use, cl[4]",
               "first_use", "1")
    emit("            else:")
    demand_miss_block("                ", "True")
    hook_block("                ",
               "issue, pc, mpc, addr, line, False, False, True, "
               "0, 0, -1, served, component",
               "served", "level")
    if of:
        emit("                on_fill(line, 1)")
    emit("            complete = issue + 1")
    emit("        else:  # cls == 3: statically mispredicted branch")
    emit("            issue = dispatch")
    emit("            if s1 >= 0:")
    emit("                ready = reg_ready[s1]")
    emit("                if ready > issue:")
    emit("                    issue = ready")
    emit("            if s2 >= 0:")
    emit("                ready = reg_ready[s2]")
    emit("                if ready > issue:")
    emit("                    issue = ready")
    emit("            complete = issue + 1")
    emit("            fetch_cycle = complete + branch_penalty")
    emit("            fetch_slot = 0")
    emit("        if complete > last_commit:")
    emit("            last_commit = complete")
    emit("            commits_at_time = 1")
    emit("        else:")
    emit("            commits_at_time += 1")
    emit("            if commits_at_time > width:")
    emit("                last_commit += 1")
    emit("                commits_at_time = 1")
    emit("        commit_ring[rob_slot] = last_commit")
    emit("")

    # ------------------------------------------------------------------
    # Finalization: write the virtualized story into the real objects.
    # ------------------------------------------------------------------
    emit("    core._index = n")
    emit("    core._fetch_cycle = fetch_cycle")
    emit("    core._fetch_slot = fetch_slot")
    emit("    core._last_commit_time = last_commit")
    emit("    core._commits_at_time = commits_at_time")
    emit("    stats.instructions += n")
    emit("    stats.cycles = last_commit")
    emit("    stats.loads += plan.loads")
    emit("    stats.stores += plan.stores")
    emit("    stats.branches += plan.branches")
    emit("    stats.mispredicts += plan.mispredicts")
    emit("    stats.load_latency_total += load_latency_total")
    emit("    l1_stats = l1.stats")
    emit("    l1_stats.demand_accesses += plan.n_mem")
    emit("    l1_stats.demand_hits += l1_hits")
    emit("    l1_stats.demand_misses += l1_misses")
    emit("    l1_stats.mshr_merges += l1_merges")
    emit("    l1_stats.useful_prefetches += l1_useful")
    emit("    l1_stats.late_prefetch_hits += l1_late")
    emit("    l1_stats.evictions += l1_evic")
    emit("    l1_stats.writebacks += l1_wb")
    emit("    l1_stats.prefetch_fills += l1_pff")
    emit("    l1_stats.prefetch_evicted_unused += l1_pfe")
    emit("    l2_stats = l2.stats")
    emit("    l2_stats.demand_accesses += l2_acc")
    emit("    l2_stats.demand_hits += l2_hits")
    emit("    l2_stats.demand_misses += l2_missc")
    emit("    l2_stats.useful_prefetches += l2_useful")
    emit("    l2_stats.late_prefetch_hits += l2_late")
    emit("    l2_stats.evictions += l2_evic")
    emit("    l2_stats.writebacks += l2_wb")
    emit("    l2_stats.prefetch_fills += l2_pff")
    emit("    l2_stats.prefetch_evicted_unused += l2_pfe")
    emit("    l3_stats = l3.stats")
    emit("    l3_stats.demand_accesses += l3_acc")
    emit("    l3_stats.demand_hits += l3_hits")
    emit("    l3_stats.demand_misses += l3_missc")
    emit("    l3_stats.useful_prefetches += l3_useful")
    emit("    l3_stats.evictions += l3_evic")
    emit("    l3_stats.writebacks += l3_wb")
    emit("    l3_stats.prefetch_fills += l3_pff")
    emit("    l3_stats.prefetch_evicted_unused += l3_pfe")
    emit("    dram_stats = dram.stats")
    emit("    dram_stats.reads += d_reads")
    emit("    dram_stats.writes += d_writes")
    emit("    dram_stats.row_hits += row_hits")
    emit("    dram_stats.row_empty += row_empty")
    emit("    dram_stats.row_conflicts += row_conflicts")
    emit("    dram_stats.dropped_prefetches += d_dropped")
    emit("    dram_stats.demand_queue_stalls += d_stalls")
    emit("    pf_stats = hierarchy.prefetch_stats")
    emit("    pf_stats.issued += pf_issued")
    emit("    pf_stats.issued_to_l1 += pf_to_l1")
    emit("    pf_stats.issued_to_l2 += pf_to_l2")
    emit("    pf_stats.filtered += pf_filtered")
    emit("    pf_stats.dropped_mshr += pf_drop_mshr")
    emit("    pf_stats.dropped_dram += pf_drop_dram")
    emit("    hierarchy.pollution_misses_l1 += pollution_l1")
    emit("    hierarchy.pollution_misses_l2 += pollution_l2")
    emit("    return stats")
    return "\n".join(lines) + "\n"
