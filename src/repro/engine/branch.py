"""Branch predictors for the core model.

Table I specifies a TAGE-class predictor ("L-Tag, 1+12 components") with
a 256-entry loop predictor.  The default core model uses static
backward-taken/forward-not-taken prediction (adequate for the loop-heavy
workloads); this module provides a stronger dynamic predictor for
sensitivity studies:

* :class:`GsharePredictor` — global-history XOR PC indexed 2-bit
  counters, the standard stand-in for a modern predictor at small scale,
* combined with a :class:`LoopPredictor` — per-branch trip-count
  detection that predicts the exit iteration of fixed-count loops, the
  distinguishing Table I feature.
"""

from __future__ import annotations


class StaticPredictor:
    """Backward-taken / forward-not-taken."""

    name = "static"

    def predict(self, pc: int, target_pc: int) -> bool:
        return target_pc < pc

    def update(self, pc: int, target_pc: int, taken: bool) -> None:
        """Static prediction learns nothing."""


class LoopPredictor:
    """Detects fixed trip counts: a branch taken exactly N times between
    not-taken outcomes is predicted not-taken on its Nth iteration."""

    def __init__(self, entries: int = 256, confidence_threshold: int = 2
                 ) -> None:
        self.entries = entries
        self.confidence_threshold = confidence_threshold
        # pc -> [current streak, learned trip count, confidence]
        self._table: dict[int, list[int]] = {}

    def predict(self, pc: int) -> bool | None:
        """Returns a prediction or ``None`` when not confident."""
        entry = self._table.get(pc)
        if entry is None:
            return None
        streak, trip_count, confidence = entry
        if confidence < self.confidence_threshold or trip_count == 0:
            return None
        return streak + 1 < trip_count

    def update(self, pc: int, taken: bool) -> None:
        entry = self._table.get(pc)
        if entry is None:
            if len(self._table) >= self.entries:
                self._table.pop(next(iter(self._table)))
            entry = self._table[pc] = [0, 0, 0]
        if taken:
            entry[0] += 1
            return
        # Loop exit: does the streak match the learned trip count?
        streak = entry[0] + 1  # iterations including the exit
        if streak == entry[1]:
            entry[2] = min(entry[2] + 1, 3)
        else:
            entry[1] = streak
            entry[2] = 0
        entry[0] = 0


class GsharePredictor:
    """Gshare + loop predictor (the Table I stand-in)."""

    name = "gshare"

    def __init__(self, history_bits: int = 12,
                 loop_entries: int = 256) -> None:
        self.history_bits = history_bits
        self._mask = (1 << history_bits) - 1
        self._history = 0
        self._counters = bytearray([2] * (1 << history_bits))  # weakly taken
        self.loops = LoopPredictor(entries=loop_entries)

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int, target_pc: int) -> bool:
        loop_prediction = self.loops.predict(pc)
        if loop_prediction is not None:
            return loop_prediction
        return self._counters[self._index(pc)] >= 2

    def update(self, pc: int, target_pc: int, taken: bool) -> None:
        index = self._index(pc)
        counter = self._counters[index]
        if taken and counter < 3:
            self._counters[index] = counter + 1
        elif not taken and counter > 0:
            self._counters[index] = counter - 1
        self.loops.update(pc, taken)
        self._history = ((self._history << 1) | int(taken)) & self._mask


def make_predictor(name: str):
    """Factory: ``"static"`` or ``"gshare"``."""
    if name == "static":
        return StaticPredictor()
    if name == "gshare":
        return GsharePredictor()
    raise ValueError(f"unknown branch predictor {name!r}")
