"""Single-core system harness: trace + prefetcher + hierarchy -> results."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.base import NullPrefetcher, Prefetcher
from repro.engine.config import SystemConfig, EXPERIMENT_CONFIG
from repro.engine.ooo import CoreStats, OoOCore
from repro.isa.trace import Trace
from repro.memory.cache import CacheStats
from repro.memory.dram import DramStats
from repro.memory.hierarchy import Hierarchy, PrefetchStats
from repro.telemetry.manifest import RunManifest, build_manifest


@dataclass
class SimulationResult:
    """Everything the experiments need from one (trace, prefetcher) run."""

    workload: str
    prefetcher: str
    core: CoreStats
    l1d: CacheStats
    l2: CacheStats
    l3: CacheStats
    dram: DramStats
    prefetch: PrefetchStats
    miss_lines_l1: Counter = field(default_factory=Counter)
    miss_lines_l2: Counter = field(default_factory=Counter)
    attempted_prefetch_lines: set = field(default_factory=set)
    attempted_by_component: dict = field(default_factory=dict)
    pollution_misses_l1: int = 0
    pollution_misses_l2: int = 0
    kernel: str = "generic"
    """Replay-kernel variant that produced this result (see
    :mod:`repro.engine.kernel`); lets benchmarks and the fault journal
    attribute timings to a kernel."""
    manifest: RunManifest | None = None
    """Provenance stamp (config tag, prefetcher spec, git SHA, counter
    snapshot); see :mod:`repro.telemetry.manifest`."""

    @property
    def cycles(self) -> int:
        return self.core.cycles

    @property
    def ipc(self) -> float:
        return self.core.ipc

    @property
    def dram_traffic(self) -> int:
        return self.dram.total_traffic

    @property
    def l1_mpki(self) -> float:
        if not self.core.instructions:
            return 0.0
        return 1000.0 * self.l1d.demand_misses / self.core.instructions

    @property
    def l2_mpki(self) -> float:
        if not self.core.instructions:
            return 0.0
        return 1000.0 * self.l2.demand_misses / self.core.instructions

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Speedup of this run relative to ``baseline`` (same trace)."""
        if self.cycles == 0:
            return 0.0
        return baseline.cycles / self.cycles


def simulate(trace: Trace, prefetcher: Prefetcher | None = None,
             config: SystemConfig | None = None,
             tracker=None, telemetry=None, config_tag: str = "",
             spec: str | None = None,
             collect_footprint: bool = True) -> SimulationResult:
    """Simulate one trace on a single-core system.

    Parameters
    ----------
    prefetcher:
        Any :class:`~repro.core.base.Prefetcher`; defaults to no prefetching.
    config:
        System configuration; defaults to the experiment configuration
        (Table I with caches scaled to the shortened traces).
    tracker:
        Optional credit tracker (see :mod:`repro.analysis.credit`) attached
        to the hierarchy for per-prefetch pollution accounting.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry` hub.  When given it is
        wired to the hierarchy, the DRAM controller, the core, and (for
        composites) the coordinator; when ``None`` the simulation runs the
        exact seed code path.
    config_tag / spec:
        Provenance strings recorded in the result's manifest (the
        experiment runner passes its cache tag and stable spec key).
    collect_footprint:
        When False the hierarchy skips the per-line miss Counters (lean
        throughput mode for ``repro bench``); every scope/coverage
        analysis needs the default True.
    """
    prefetcher = prefetcher if prefetcher is not None else NullPrefetcher()
    config = config or EXPERIMENT_CONFIG
    prefetcher.reset()
    if prefetcher.wants_memory_image:
        prefetcher.set_memory(trace.memory)
    hierarchy = Hierarchy(config, collect_footprint=collect_footprint)
    if tracker is not None:
        hierarchy.tracker = tracker
    core = OoOCore(trace, hierarchy, prefetcher, config.core)
    if telemetry is not None:
        hierarchy.telemetry = telemetry
        hierarchy.dram.telemetry = telemetry
        coordinator = getattr(prefetcher, "coordinator", None)
        if coordinator is not None:
            coordinator.telemetry = telemetry
        core.attach_telemetry(telemetry)
    core_stats = core.run()
    result = SimulationResult(
        workload=trace.name,
        prefetcher=prefetcher.name,
        core=core_stats,
        l1d=hierarchy.l1d.stats,
        l2=hierarchy.l2.stats,
        l3=hierarchy.l3.stats,
        dram=hierarchy.dram.stats,
        prefetch=hierarchy.prefetch_stats,
        miss_lines_l1=hierarchy.miss_lines_l1,
        miss_lines_l2=hierarchy.miss_lines_l2,
        attempted_prefetch_lines=hierarchy.attempted_prefetch_lines,
        attempted_by_component=hierarchy.attempted_by_component,
        pollution_misses_l1=hierarchy.pollution_misses_l1,
        pollution_misses_l2=hierarchy.pollution_misses_l2,
        kernel=core.kernel_variant,
    )
    result.manifest = build_manifest(result, spec=spec,
                                     config_tag=config_tag,
                                     telemetry=telemetry)
    return result
