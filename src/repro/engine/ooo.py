"""Simplified out-of-order core timing model.

A one-pass scoreboard over the retired-instruction trace, in the spirit of
trace-driven simulators (the substitution for gem5's execution-driven core;
see DESIGN.md).  Modeled:

* 4-wide fetch/dispatch and commit (Table I),
* a 192-entry ROB: instruction *n* cannot dispatch before instruction
  *n - 192* commits,
* register dependencies through a per-register ready-time scoreboard,
* load latency from the cache hierarchy, including in-flight fill merging
  and MSHR back-pressure,
* static branch prediction (backward taken / forward not-taken; indirect
  transfers predicted via BTB/RAS) with a 15-cycle mispredict bubble,
* the prefetcher hooks: full instruction stream (when requested) and
  per-access events carrying the ``mPC``, the load value, and the observed
  latency.

Not modeled: wrong-path execution (the penalty is charged as a fetch
bubble) and LSQ-capacity stalls (the ROB bound dominates for these
workloads).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.base import AccessEvent, Prefetcher
from repro.engine.config import CoreConfig
from repro.isa.instructions import NUM_REGISTERS, OpClass
from repro.isa.trace import CompiledTrace, Trace
from repro.memory.hierarchy import LINE_SHIFT, Hierarchy


@dataclass(slots=True)
class CoreStats:
    instructions: int = 0
    cycles: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    mispredicts: int = 0
    load_latency_total: int = 0
    miss_pcs: Counter = field(default_factory=Counter)
    miss_latency_by_pc: Counter = field(default_factory=Counter)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def average_load_latency(self) -> float:
        return self.load_latency_total / self.loads if self.loads else 0.0


_LOAD = int(OpClass.LOAD)
_STORE = int(OpClass.STORE)
_ALU = int(OpClass.ALU)
_BRANCH = int(OpClass.BRANCH)


class OoOCore:
    """Incremental core model; ``step()`` retires one instruction.

    The incremental interface exists so the multicore harness can advance
    several cores in (approximate) cycle order against a shared L3/DRAM.
    """

    __slots__ = (
        "trace",
        "hierarchy",
        "prefetcher",
        "config",
        "stats",
        "_records",
        "_num_records",
        "_step",
        "_c_pc",
        "_c_opc",
        "_c_addr",
        "_c_value",
        "_c_dst",
        "_c_src1",
        "_c_src2",
        "_c_taken",
        "_c_target",
        "_c_ras",
        "_index",
        "_reg_ready",
        "_fetch_cycle",
        "_fetch_slot",
        "_commit_ring",
        "_rob_size",
        "_last_commit_time",
        "_commits_at_time",
        "_feed_instructions",
        "_observe_instruction",
        "_observe_access",
        "_on_access",
        "_on_fill",
        "_telemetry",
        "_sampler",
        "_branch_predictor",
        "_width",
        "_alu_latency",
        "_branch_penalty",
        "kernel_variant",
    )

    def __init__(self, trace: Trace, hierarchy: Hierarchy,
                 prefetcher: Prefetcher,
                 config: CoreConfig | None = None) -> None:
        self.trace = trace
        self.hierarchy = hierarchy
        self.prefetcher = prefetcher
        self.config = config or CoreConfig()
        self.stats = CoreStats()
        self._index = 0
        self._reg_ready = [0] * NUM_REGISTERS
        self._fetch_cycle = 0
        self._fetch_slot = 0
        rob = self.config.rob_entries
        self._commit_ring = [0] * rob
        self._rob_size = rob
        self._last_commit_time = 0
        self._commits_at_time = 0
        self._feed_instructions = prefetcher.needs_instruction_stream
        # Bind the per-access hooks once, and only when the prefetcher
        # actually overrides them: for the no-prefetch baseline all three
        # stay None and the access path skips building AccessEvents.
        # Comparing the bound method's ``__func__`` (not the class
        # attribute) also honors instance-level shadowing, which the
        # composite uses to splice component hooks in directly.
        def _bound(attr: str):
            method = getattr(prefetcher, attr)
            if getattr(method, "__func__", None) is getattr(Prefetcher,
                                                            attr):
                return None
            return method

        self._observe_instruction = (
            _bound("observe_instruction") if self._feed_instructions
            else None
        )
        self._observe_access = _bound("observe_access")
        self._on_access = _bound("on_access")
        self._on_fill = _bound("on_fill")
        self._telemetry = None
        self._sampler = None
        self.kernel_variant = "generic"
        # Hot-loop bindings: read once here instead of chasing
        # ``self.config.<attr>`` on every retired instruction.
        self._width = self.config.width
        self._alu_latency = self.config.int_alu_latency
        self._branch_penalty = self.config.branch_miss_penalty
        from repro.engine.branch import make_predictor

        self._branch_predictor = make_predictor(
            self.config.branch_predictor
        )
        # Replay-path selection.  Compiled traces are replayed straight
        # from their list columns (no record objects in the hot loop)
        # whenever no prefetcher wants the instruction stream.  When one
        # does (T2/P1/composites), the trace's materialized TraceRecord
        # views feed ``observe_instruction`` — the thin per-record view
        # the prefetcher-observation API keeps — via the record path,
        # which is also the reference path for plain object traces.
        if (isinstance(trace, CompiledTrace)
                and self._observe_instruction is None):
            self._records = None
            self._num_records = len(trace)
            (self._c_pc, self._c_opc, self._c_addr, self._c_value,
             self._c_dst, self._c_src1, self._c_src2, self._c_taken,
             self._c_target, self._c_ras) = trace.columns
            self._step = self._step_columns
        else:
            self._records = trace.records
            self._num_records = len(self._records)
            self._step = self._step_records

    def attach_telemetry(self, telemetry) -> None:
        """Wire a :class:`repro.telemetry.Telemetry` hub to this core.

        Binds the hub's sampler (if any) to this core + hierarchy so the
        retire loop can drive it.  Attaching never changes timing: the
        sampler only reads state.
        """
        self._telemetry = telemetry
        sampler = telemetry.sampler
        if sampler is not None:
            sampler.bind(self, self.hierarchy, telemetry)
        self._sampler = sampler

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._index >= self._num_records

    @property
    def now(self) -> int:
        """The core's current (fetch) cycle, for multicore scheduling."""
        return self._fetch_cycle

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next instruction; returns False when trace is done.

        Dispatches to the column replay (compiled trace, no instruction
        stream consumer) or the record replay (object traces, and any
        prefetcher that observes the instruction stream) — selected once
        in ``__init__``, identical timing by construction.
        """
        return self._step()

    def _step_records(self) -> bool:
        """Record replay: one :class:`TraceRecord` per retired instruction."""
        index = self._index
        if index >= self._num_records:
            return False
        record = self._records[index]
        self._index = index + 1
        width = self._width

        # Fetch bandwidth: `width` instructions per cycle.
        fetch_cycle = self._fetch_cycle
        fetch_slot = self._fetch_slot
        if fetch_slot >= width:
            fetch_cycle += 1
            fetch_slot = 0
        self._fetch_slot = fetch_slot + 1
        fetch_time = fetch_cycle

        # ROB occupancy: slot of instruction (index - rob) must be free.
        rob_slot = index % self._rob_size
        rob_free = self._commit_ring[rob_slot]
        if rob_free > fetch_time:
            # ROB-full stall also stalls fetch.
            dispatch = rob_free
            fetch_cycle = rob_free
            self._fetch_slot = 1
        else:
            dispatch = fetch_time
        self._fetch_cycle = fetch_cycle

        observe_instruction = self._observe_instruction
        if observe_instruction is not None:
            observe_instruction(record, dispatch)

        reg_ready = self._reg_ready
        opc = record.opc
        if opc == _LOAD:
            issue = dispatch
            src = record.src1
            if src >= 0 and reg_ready[src] > issue:
                issue = reg_ready[src]
            complete = self._do_load(record.pc, record.addr, record.value,
                                     record.dst, record.ras_top, issue)
            reg_ready[record.dst] = complete
        elif opc == _STORE:
            issue = dispatch
            src = record.src1
            if src >= 0 and reg_ready[src] > issue:
                issue = reg_ready[src]
            data = record.src2
            if data >= 0 and reg_ready[data] > issue:
                issue = reg_ready[data]
            self._do_store(record.pc, record.addr, record.ras_top, issue)
            complete = issue + 1
        elif opc == _ALU:
            issue = dispatch
            src = record.src1
            if src >= 0 and reg_ready[src] > issue:
                issue = reg_ready[src]
            src = record.src2
            if src >= 0 and reg_ready[src] > issue:
                issue = reg_ready[src]
            complete = issue + self._alu_latency
            if record.dst >= 0:
                reg_ready[record.dst] = complete
        elif opc == _BRANCH:
            issue = dispatch
            src = record.src1
            if src >= 0 and reg_ready[src] > issue:
                issue = reg_ready[src]
            src = record.src2
            if src >= 0 and reg_ready[src] > issue:
                issue = reg_ready[src]
            complete = issue + 1
            self.stats.branches += 1
            if record.src1 >= 0:  # conditional branch: predict and verify
                predictor = self._branch_predictor
                predicted_taken = predictor.predict(record.pc,
                                                    record.target_pc)
                predictor.update(record.pc, record.target_pc, record.taken)
                if predicted_taken != record.taken:
                    self.stats.mispredicts += 1
                    self._fetch_cycle = complete + self._branch_penalty
                    self._fetch_slot = 0
        else:  # CALL / RET / OTHER: predicted by BTB/RAS, 1-cycle op
            complete = dispatch + 1

        # In-order commit, `width` per cycle.
        last_commit = self._last_commit_time
        if complete > last_commit:
            commit = complete
            self._commits_at_time = 1
        else:
            commit = last_commit
            commits_at_time = self._commits_at_time + 1
            if commits_at_time > width:
                commit += 1
                commits_at_time = 1
            self._commits_at_time = commits_at_time
        self._last_commit_time = commit
        self._commit_ring[rob_slot] = commit

        stats = self.stats
        stats.instructions += 1
        stats.cycles = commit
        sampler = self._sampler
        if sampler is not None:
            sampler.on_instruction()
        return True

    def _step_columns(self) -> bool:
        """Column replay: fields read straight from the compiled trace.

        Mirrors :meth:`_step_records` line for line — only field access
        differs (list-column indexing instead of record attributes), and
        only the columns an opcode actually needs are touched.  Never
        selected when a prefetcher observes the instruction stream, so
        the ``observe_instruction`` feed is absent here by construction.
        """
        index = self._index
        if index >= self._num_records:
            return False
        self._index = index + 1
        width = self._width

        # Fetch bandwidth: `width` instructions per cycle.
        fetch_cycle = self._fetch_cycle
        fetch_slot = self._fetch_slot
        if fetch_slot >= width:
            fetch_cycle += 1
            fetch_slot = 0
        self._fetch_slot = fetch_slot + 1
        fetch_time = fetch_cycle

        # ROB occupancy: slot of instruction (index - rob) must be free.
        rob_slot = index % self._rob_size
        rob_free = self._commit_ring[rob_slot]
        if rob_free > fetch_time:
            # ROB-full stall also stalls fetch.
            dispatch = rob_free
            fetch_cycle = rob_free
            self._fetch_slot = 1
        else:
            dispatch = fetch_time
        self._fetch_cycle = fetch_cycle

        reg_ready = self._reg_ready
        opc = self._c_opc[index]
        if opc == _LOAD:
            issue = dispatch
            src = self._c_src1[index]
            if src >= 0 and reg_ready[src] > issue:
                issue = reg_ready[src]
            dst = self._c_dst[index]
            complete = self._do_load(self._c_pc[index],
                                     self._c_addr[index],
                                     self._c_value[index], dst,
                                     self._c_ras[index], issue)
            reg_ready[dst] = complete
        elif opc == _STORE:
            issue = dispatch
            src = self._c_src1[index]
            if src >= 0 and reg_ready[src] > issue:
                issue = reg_ready[src]
            data = self._c_src2[index]
            if data >= 0 and reg_ready[data] > issue:
                issue = reg_ready[data]
            self._do_store(self._c_pc[index], self._c_addr[index],
                           self._c_ras[index], issue)
            complete = issue + 1
        elif opc == _ALU:
            issue = dispatch
            src = self._c_src1[index]
            if src >= 0 and reg_ready[src] > issue:
                issue = reg_ready[src]
            src = self._c_src2[index]
            if src >= 0 and reg_ready[src] > issue:
                issue = reg_ready[src]
            complete = issue + self._alu_latency
            dst = self._c_dst[index]
            if dst >= 0:
                reg_ready[dst] = complete
        elif opc == _BRANCH:
            issue = dispatch
            src1 = self._c_src1[index]
            if src1 >= 0 and reg_ready[src1] > issue:
                issue = reg_ready[src1]
            src = self._c_src2[index]
            if src >= 0 and reg_ready[src] > issue:
                issue = reg_ready[src]
            complete = issue + 1
            self.stats.branches += 1
            if src1 >= 0:  # conditional branch: predict and verify
                pc = self._c_pc[index]
                target_pc = self._c_target[index]
                taken = self._c_taken[index]
                predictor = self._branch_predictor
                predicted_taken = predictor.predict(pc, target_pc)
                predictor.update(pc, target_pc, taken)
                if predicted_taken != taken:
                    self.stats.mispredicts += 1
                    self._fetch_cycle = complete + self._branch_penalty
                    self._fetch_slot = 0
        else:  # CALL / RET / OTHER: predicted by BTB/RAS, 1-cycle op
            complete = dispatch + 1

        # In-order commit, `width` per cycle.
        last_commit = self._last_commit_time
        if complete > last_commit:
            commit = complete
            self._commits_at_time = 1
        else:
            commit = last_commit
            commits_at_time = self._commits_at_time + 1
            if commits_at_time > width:
                commit += 1
                commits_at_time = 1
            self._commits_at_time = commits_at_time
        self._last_commit_time = commit
        self._commit_ring[rob_slot] = commit

        stats = self.stats
        stats.instructions += 1
        stats.cycles = commit
        sampler = self._sampler
        if sampler is not None:
            sampler.on_instruction()
        return True

    # ------------------------------------------------------------------
    def _do_load(self, pc: int, addr: int, value: int, dst: int,
                 ras_top: int, issue: int) -> int:
        result = self.hierarchy.demand_access(addr, issue,
                                              is_write=False, pc=pc)
        latency = result.ready_time - issue
        stats = self.stats
        stats.loads += 1
        stats.load_latency_total += latency
        if result.primary_miss:
            stats.miss_pcs[pc] += 1
            stats.miss_latency_by_pc[pc] += latency
        line = addr >> LINE_SHIFT
        observe_access = self._observe_access
        on_access = self._on_access
        if observe_access is not None or on_access is not None:
            event = AccessEvent(
                cycle=issue,
                pc=pc,
                mpc=pc ^ ras_top,
                addr=addr,
                line=line,
                is_load=True,
                hit=result.l1_hit,
                primary_miss=result.primary_miss,
                latency=latency,
                value=value,
                dst=dst,
                served_by_prefetch=result.served_by_prefetch,
                serving_component=result.prefetch_component,
            )
            if result.served_by_prefetch:
                self.prefetcher.on_prefetch_hit(line, result.hit_level)
            if observe_access is not None:
                observe_access(event)
            requests = on_access(event) if on_access is not None else None
            if requests:
                self._issue_requests(requests, issue, pc)
        elif result.served_by_prefetch:
            self.prefetcher.on_prefetch_hit(line, result.hit_level)
        if result.primary_miss and self._on_fill is not None:
            self._on_fill(line, 1)
        return result.ready_time

    def _do_store(self, pc: int, addr: int, ras_top: int,
                  issue: int) -> None:
        result = self.hierarchy.demand_access(addr, issue,
                                              is_write=True, pc=pc)
        self.stats.stores += 1
        line = addr >> LINE_SHIFT
        observe_access = self._observe_access
        on_access = self._on_access
        if observe_access is not None or on_access is not None:
            event = AccessEvent(
                cycle=issue,
                pc=pc,
                mpc=pc ^ ras_top,
                addr=addr,
                line=line,
                is_load=False,
                hit=result.l1_hit,
                primary_miss=result.primary_miss,
                latency=0,
                value=0,
                dst=-1,
                served_by_prefetch=result.served_by_prefetch,
                serving_component=result.prefetch_component,
            )
            if result.served_by_prefetch:
                self.prefetcher.on_prefetch_hit(line, result.hit_level)
            if observe_access is not None:
                observe_access(event)
            requests = on_access(event) if on_access is not None else None
            if requests:
                self._issue_requests(requests, issue, pc)
        elif result.served_by_prefetch:
            self.prefetcher.on_prefetch_hit(line, result.hit_level)
        if result.primary_miss and self._on_fill is not None:
            self._on_fill(line, 1)

    def _issue_requests(self, requests, cycle: int, pc: int) -> None:
        hierarchy = self.hierarchy
        on_fill = self._on_fill
        for request in requests:
            issued = hierarchy.prefetch(request.line, cycle,
                                        target_level=request.target_level,
                                        component=request.component,
                                        pc=pc)
            if issued and on_fill is not None:
                on_fill(request.line, request.target_level,
                        prefetched=True)

    # ------------------------------------------------------------------
    def run(self) -> CoreStats:
        """Run the whole trace.

        Whole-trace runs of a compiled trace go through a specialized
        replay kernel (:mod:`repro.engine.kernel`): the step loop is
        partial-evaluated for this core's exact hook/telemetry/predictor
        configuration, bit-identically.  Selected here rather than in
        ``__init__`` because the sampler attaches after construction.
        Object traces, incremental ``step()`` callers (the multicore
        harness), and ``REPRO_KERNEL=generic`` use the generic loop.
        """
        from repro.engine.batch import maybe_run_batch, maybe_run_segmented
        from repro.engine.kernel import get_kernel, kernel_flags, \
            variant_name

        flags = kernel_flags(self)
        if flags is not None:
            # Hook-free traces first try the vectorized batch tier
            # (repro.engine.batch); hooked leanmem/static-BP traces try
            # the segmented tier (vectorized stretches between hook
            # positions, scalar islands at them).  Either declines —
            # warm state, shared or subclassed hierarchy components,
            # REPRO_KERNEL=scalar, too-dense hook coverage — by
            # returning None, and the scalar kernel runs instead.
            result = maybe_run_batch(self, flags)
            if result is not None:
                return result
            result = maybe_run_segmented(self, flags)
            if result is not None:
                return result
            self.kernel_variant = variant_name(flags)
            return get_kernel(flags)(self)
        step = self._step
        while step():
            pass
        return self.stats
