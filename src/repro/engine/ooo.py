"""Simplified out-of-order core timing model.

A one-pass scoreboard over the retired-instruction trace, in the spirit of
trace-driven simulators (the substitution for gem5's execution-driven core;
see DESIGN.md).  Modeled:

* 4-wide fetch/dispatch and commit (Table I),
* a 192-entry ROB: instruction *n* cannot dispatch before instruction
  *n - 192* commits,
* register dependencies through a per-register ready-time scoreboard,
* load latency from the cache hierarchy, including in-flight fill merging
  and MSHR back-pressure,
* static branch prediction (backward taken / forward not-taken; indirect
  transfers predicted via BTB/RAS) with a 15-cycle mispredict bubble,
* the prefetcher hooks: full instruction stream (when requested) and
  per-access events carrying the ``mPC``, the load value, and the observed
  latency.

Not modeled: wrong-path execution (the penalty is charged as a fetch
bubble) and LSQ-capacity stalls (the ROB bound dominates for these
workloads).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.base import AccessEvent, Prefetcher
from repro.engine.config import CoreConfig
from repro.isa.instructions import NUM_REGISTERS, OpClass
from repro.isa.trace import Trace
from repro.memory.hierarchy import LINE_SHIFT, Hierarchy


@dataclass(slots=True)
class CoreStats:
    instructions: int = 0
    cycles: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    mispredicts: int = 0
    load_latency_total: int = 0
    miss_pcs: Counter = field(default_factory=Counter)
    miss_latency_by_pc: Counter = field(default_factory=Counter)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    @property
    def average_load_latency(self) -> float:
        return self.load_latency_total / self.loads if self.loads else 0.0


class OoOCore:
    """Incremental core model; ``step()`` retires one instruction.

    The incremental interface exists so the multicore harness can advance
    several cores in (approximate) cycle order against a shared L3/DRAM.
    """

    def __init__(self, trace: Trace, hierarchy: Hierarchy,
                 prefetcher: Prefetcher,
                 config: CoreConfig | None = None) -> None:
        self.trace = trace
        self.hierarchy = hierarchy
        self.prefetcher = prefetcher
        self.config = config or CoreConfig()
        self.stats = CoreStats()
        self._records = trace.records
        self._index = 0
        self._reg_ready = [0] * NUM_REGISTERS
        self._fetch_cycle = 0
        self._fetch_slot = 0
        rob = self.config.rob_entries
        self._commit_ring = [0] * rob
        self._rob_size = rob
        self._last_commit_time = 0
        self._commits_at_time = 0
        self._feed_instructions = prefetcher.needs_instruction_stream
        self._telemetry = None
        self._sampler = None
        from repro.engine.branch import make_predictor

        self._branch_predictor = make_predictor(
            self.config.branch_predictor
        )

    def attach_telemetry(self, telemetry) -> None:
        """Wire a :class:`repro.telemetry.Telemetry` hub to this core.

        Binds the hub's sampler (if any) to this core + hierarchy so the
        retire loop can drive it.  Attaching never changes timing: the
        sampler only reads state.
        """
        self._telemetry = telemetry
        sampler = telemetry.sampler
        if sampler is not None:
            sampler.bind(self, self.hierarchy, telemetry)
        self._sampler = sampler

    # ------------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._index >= len(self._records)

    @property
    def now(self) -> int:
        """The core's current (fetch) cycle, for multicore scheduling."""
        return self._fetch_cycle

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Process the next instruction; returns False when trace is done."""
        index = self._index
        records = self._records
        if index >= len(records):
            return False
        record = records[index]
        self._index = index + 1
        config = self.config

        # Fetch bandwidth: `width` instructions per cycle.
        if self._fetch_slot >= config.width:
            self._fetch_cycle += 1
            self._fetch_slot = 0
        self._fetch_slot += 1
        fetch_time = self._fetch_cycle

        # ROB occupancy: slot of instruction (index - rob) must be free.
        rob_free = self._commit_ring[index % self._rob_size]
        dispatch = fetch_time if fetch_time >= rob_free else rob_free
        if dispatch > self._fetch_cycle:
            # ROB-full stall also stalls fetch.
            self._fetch_cycle = dispatch
            self._fetch_slot = 1

        if self._feed_instructions:
            self.prefetcher.observe_instruction(record, dispatch)

        reg_ready = self._reg_ready
        opc = record.opc
        if opc == OpClass.LOAD:
            issue = dispatch
            src = record.src1
            if src >= 0 and reg_ready[src] > issue:
                issue = reg_ready[src]
            complete = self._do_load(record, issue)
            reg_ready[record.dst] = complete
        elif opc == OpClass.STORE:
            issue = dispatch
            src = record.src1
            if src >= 0 and reg_ready[src] > issue:
                issue = reg_ready[src]
            data = record.src2
            if data >= 0 and reg_ready[data] > issue:
                issue = reg_ready[data]
            self._do_store(record, issue)
            complete = issue + 1
        elif opc == OpClass.ALU:
            issue = dispatch
            src = record.src1
            if src >= 0 and reg_ready[src] > issue:
                issue = reg_ready[src]
            src = record.src2
            if src >= 0 and reg_ready[src] > issue:
                issue = reg_ready[src]
            complete = issue + config.int_alu_latency
            if record.dst >= 0:
                reg_ready[record.dst] = complete
        elif opc == OpClass.BRANCH:
            issue = dispatch
            src = record.src1
            if src >= 0 and reg_ready[src] > issue:
                issue = reg_ready[src]
            src = record.src2
            if src >= 0 and reg_ready[src] > issue:
                issue = reg_ready[src]
            complete = issue + 1
            self.stats.branches += 1
            if record.src1 >= 0:  # conditional branch: predict and verify
                predictor = self._branch_predictor
                predicted_taken = predictor.predict(record.pc,
                                                    record.target_pc)
                predictor.update(record.pc, record.target_pc, record.taken)
                if predicted_taken != record.taken:
                    self.stats.mispredicts += 1
                    self._fetch_cycle = complete + config.branch_miss_penalty
                    self._fetch_slot = 0
        else:  # CALL / RET / OTHER: predicted by BTB/RAS, 1-cycle op
            complete = dispatch + 1

        # In-order commit, `width` per cycle.
        commit = complete if complete > self._last_commit_time else self._last_commit_time
        if commit == self._last_commit_time:
            self._commits_at_time += 1
            if self._commits_at_time > config.width:
                commit += 1
                self._commits_at_time = 1
        else:
            self._commits_at_time = 1
        self._last_commit_time = commit
        self._commit_ring[index % self._rob_size] = commit

        self.stats.instructions += 1
        self.stats.cycles = commit
        sampler = self._sampler
        if sampler is not None:
            sampler.on_instruction()
        return True

    # ------------------------------------------------------------------
    def _do_load(self, record, issue: int) -> int:
        result = self.hierarchy.demand_access(record.addr, issue,
                                              is_write=False, pc=record.pc)
        latency = result.ready_time - issue
        self.stats.loads += 1
        self.stats.load_latency_total += latency
        if result.primary_miss:
            self.stats.miss_pcs[record.pc] += 1
            self.stats.miss_latency_by_pc[record.pc] += latency
        event = AccessEvent(
            cycle=issue,
            pc=record.pc,
            mpc=record.pc ^ record.ras_top,
            addr=record.addr,
            line=record.addr >> LINE_SHIFT,
            is_load=True,
            hit=result.l1_hit,
            primary_miss=result.primary_miss,
            latency=latency,
            value=record.value,
            dst=record.dst,
            served_by_prefetch=result.served_by_prefetch,
            serving_component=result.prefetch_component,
        )
        if result.served_by_prefetch:
            self.prefetcher.on_prefetch_hit(event.line, result.hit_level)
        self._issue_prefetches(event)
        if result.primary_miss:
            self.prefetcher.on_fill(event.line, 1)
        return result.ready_time

    def _do_store(self, record, issue: int) -> None:
        result = self.hierarchy.demand_access(record.addr, issue,
                                              is_write=True, pc=record.pc)
        self.stats.stores += 1
        event = AccessEvent(
            cycle=issue,
            pc=record.pc,
            mpc=record.pc ^ record.ras_top,
            addr=record.addr,
            line=record.addr >> LINE_SHIFT,
            is_load=False,
            hit=result.l1_hit,
            primary_miss=result.primary_miss,
            latency=0,
            value=0,
            dst=-1,
            served_by_prefetch=result.served_by_prefetch,
            serving_component=result.prefetch_component,
        )
        if result.served_by_prefetch:
            self.prefetcher.on_prefetch_hit(event.line, result.hit_level)
        self._issue_prefetches(event)
        if result.primary_miss:
            self.prefetcher.on_fill(event.line, 1)

    def _issue_prefetches(self, event: AccessEvent) -> None:
        self.prefetcher.observe_access(event)
        requests = self.prefetcher.on_access(event)
        if not requests:
            return
        hierarchy = self.hierarchy
        prefetcher = self.prefetcher
        for request in requests:
            issued = hierarchy.prefetch(request.line, event.cycle,
                                        target_level=request.target_level,
                                        component=request.component,
                                        pc=event.pc)
            if issued:
                prefetcher.on_fill(request.line, request.target_level,
                                   prefetched=True)

    # ------------------------------------------------------------------
    def run(self) -> CoreStats:
        """Run the whole trace."""
        step = self.step
        while step():
            pass
        return self.stats
