"""Multicore system: private L1/L2 per core, shared L3 and DRAM.

The paper's multicore experiments run 4-thread mixes and report *weighted
speedup*: ``sum_i IPC_shared_i / IPC_alone_i``.  Cores are advanced in
approximate cycle order (always stepping the core whose clock is furthest
behind), which interleaves their demand and prefetch streams at the shared
L3 and memory controller — the contention that the drop-policy experiment
(Sec. V-C1) depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heapify, heappop, heappush

from repro.core.base import NullPrefetcher, Prefetcher
from repro.engine.config import SystemConfig, EXPERIMENT_CONFIG
from repro.engine.ooo import OoOCore
from repro.engine.system import SimulationResult
from repro.isa.trace import Trace
from repro.memory.cache import Cache
from repro.memory.dram import Dram
from repro.memory.hierarchy import Hierarchy


@dataclass
class MulticoreResult:
    """Per-core results plus the shared-resource statistics."""

    per_core: list[SimulationResult]
    dram_traffic: int = 0

    def weighted_speedup(self, alone: list[SimulationResult]) -> float:
        """``sum_i IPC_shared_i / IPC_alone_i`` (paper's metric)."""
        if len(alone) != len(self.per_core):
            raise ValueError("need one standalone result per core")
        total = 0.0
        for shared, solo in zip(self.per_core, alone):
            if solo.ipc > 0:
                total += shared.ipc / solo.ipc
        return total

    @property
    def total_instructions(self) -> int:
        return sum(r.core.instructions for r in self.per_core)


def simulate_multicore(traces: list[Trace],
                       prefetchers: list[Prefetcher] | None = None,
                       config: SystemConfig | None = None,
                       trackers: list | None = None) -> MulticoreResult:
    """Simulate ``len(traces)`` cores sharing an L3 and memory controller.

    Each core gets its own prefetcher instance (they must not share
    learned state, exactly as per-core hardware would not).
    """
    config = config or EXPERIMENT_CONFIG
    n = len(traces)
    if prefetchers is None:
        prefetchers = [NullPrefetcher() for _ in range(n)]
    if len(prefetchers) != n:
        raise ValueError("need one prefetcher per trace")
    if trackers is not None and len(trackers) != n:
        raise ValueError("need one tracker per trace")

    shared_l3 = Cache(
        "L3",
        config.l3.size_bytes * n,  # Table I: 2 MB *per core*
        config.l3.ways,
        config.l3.line_bytes,
        config.l3.latency,
    )
    shared_dram = Dram(config.dram)

    cores: list[OoOCore] = []
    hierarchies: list[Hierarchy] = []
    for i, (trace, prefetcher) in enumerate(zip(traces, prefetchers)):
        prefetcher.reset()
        if prefetcher.wants_memory_image:
            prefetcher.set_memory(trace.memory)
        hierarchy = Hierarchy(config, l3=shared_l3, dram=shared_dram)
        if trackers is not None:
            hierarchy.tracker = trackers[i]
        hierarchies.append(hierarchy)
        cores.append(OoOCore(trace, hierarchy, prefetcher, config.core))

    # Min-heap on (core clock, core id): always advance the core that is
    # furthest behind so shared-resource accesses interleave realistically.
    heap = [(core.now, i) for i, core in enumerate(cores)]
    heapify(heap)
    while heap:
        _, i = heappop(heap)
        core = cores[i]
        # Advance a small burst to amortize heap traffic.
        alive = True
        for _ in range(32):
            if not core.step():
                alive = False
                break
        if alive:
            heappush(heap, (core.now, i))

    per_core = []
    for trace, prefetcher, hierarchy, core in zip(
        traces, prefetchers, hierarchies, cores
    ):
        per_core.append(
            SimulationResult(
                workload=trace.name,
                prefetcher=prefetcher.name,
                core=core.stats,
                l1d=hierarchy.l1d.stats,
                l2=hierarchy.l2.stats,
                l3=hierarchy.l3.stats,
                dram=shared_dram.stats,
                prefetch=hierarchy.prefetch_stats,
                miss_lines_l1=hierarchy.miss_lines_l1,
                miss_lines_l2=hierarchy.miss_lines_l2,
                attempted_prefetch_lines=hierarchy.attempted_prefetch_lines,
                pollution_misses_l1=hierarchy.pollution_misses_l1,
                pollution_misses_l2=hierarchy.pollution_misses_l2,
            )
        )
    return MulticoreResult(
        per_core=per_core, dram_traffic=shared_dram.stats.total_traffic
    )
