"""Name -> prefetcher factory registry.

``make_prefetcher("tpc")`` builds the paper's composite; the monolithic
names match Table II.  Factories accept keyword overrides that are passed
through to the prefetcher constructor (e.g. ``target_level=2`` for the
Fig. 16 destination experiment).
"""

from __future__ import annotations

from typing import Callable

from repro.core.base import NullPrefetcher, Prefetcher


def _null(**kwargs) -> Prefetcher:
    return NullPrefetcher()


def _stride(**kwargs) -> Prefetcher:
    from repro.baselines.stride import StridePrefetcher

    return StridePrefetcher(**kwargs)


def _nextline(**kwargs) -> Prefetcher:
    from repro.baselines.nextline import NextLinePrefetcher

    return NextLinePrefetcher(**kwargs)


def _ghb(**kwargs) -> Prefetcher:
    from repro.baselines.ghb import GhbPcDcPrefetcher

    return GhbPcDcPrefetcher(**kwargs)


def _spp(**kwargs) -> Prefetcher:
    from repro.baselines.spp import SppPrefetcher

    return SppPrefetcher(**kwargs)


def _vldp(**kwargs) -> Prefetcher:
    from repro.baselines.vldp import VldpPrefetcher

    return VldpPrefetcher(**kwargs)


def _bop(**kwargs) -> Prefetcher:
    from repro.baselines.bop import BopPrefetcher

    return BopPrefetcher(**kwargs)


def _fdp(**kwargs) -> Prefetcher:
    from repro.baselines.fdp import FdpPrefetcher

    return FdpPrefetcher(**kwargs)


def _sms(**kwargs) -> Prefetcher:
    from repro.baselines.sms import SmsPrefetcher

    return SmsPrefetcher(**kwargs)


def _ampm(**kwargs) -> Prefetcher:
    from repro.baselines.ampm import AmpmPrefetcher

    return AmpmPrefetcher(**kwargs)


def _isb(**kwargs) -> Prefetcher:
    from repro.baselines.isb import IsbPrefetcher

    return IsbPrefetcher(**kwargs)


def _markov(**kwargs) -> Prefetcher:
    from repro.baselines.markov import MarkovPrefetcher

    return MarkovPrefetcher(**kwargs)


def _t2(**kwargs) -> Prefetcher:
    from repro.core.t2 import T2Prefetcher

    return T2Prefetcher(**kwargs)


def _p1(**kwargs) -> Prefetcher:
    from repro.core.p1 import P1Prefetcher

    return P1Prefetcher(**kwargs)


def _c1(**kwargs) -> Prefetcher:
    from repro.core.c1 import C1Prefetcher

    return C1Prefetcher(**kwargs)


def _tpc(**kwargs) -> Prefetcher:
    from repro.core.composite import make_tpc

    return make_tpc(**kwargs)


def _tpc_adaptive(**kwargs) -> Prefetcher:
    from repro.core.adaptive import make_adaptive_tpc

    return make_adaptive_tpc(**kwargs)


_FACTORIES: dict[str, Callable[..., Prefetcher]] = {
    "none": _null,
    "stride": _stride,
    "nextline": _nextline,
    "ghb": _ghb,
    "spp": _spp,
    "vldp": _vldp,
    "bop": _bop,
    "fdp": _fdp,
    "sms": _sms,
    "ampm": _ampm,
    "isb": _isb,
    "markov": _markov,
    "t2": _t2,
    "p1": _p1,
    "c1": _c1,
    "tpc": _tpc,
    "tpc-adaptive": _tpc_adaptive,
}

PAPER_MONOLITHIC = ["ghb", "fdp", "vldp", "spp", "bop", "ampm", "sms"]
"""The seven monolithic prefetchers the paper compares against (Fig. 8)."""


def available_prefetchers() -> list[str]:
    """All registered prefetcher names."""
    return sorted(_FACTORIES)


def make_prefetcher(name: str, **kwargs) -> Prefetcher:
    """Instantiate a prefetcher by registry name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown prefetcher {name!r}; available: {available_prefetchers()}"
        ) from None
    return factory(**kwargs)
