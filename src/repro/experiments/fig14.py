"""Fig. 14 — existing prefetchers working alone vs as a component added
to TPC, measured *inside the region TPC does not cover*.

Paper result: in every case the existing prefetcher's effective accuracy
in the uncovered region improves when used as a component (e.g. SMS: 27%
alone -> 43% as component), because division of labor frees its capacity
from the accesses TPC already handles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.credit import CreditTracker
from repro.analysis.report import format_table
from repro.core.composite import make_tpc
from repro.experiments.runner import (
    ExperimentRunner,
    SpecFactory,
    build_prefetcher,
)
from repro.workloads import workload_names

EXTRAS = ["vldp", "spp", "fdp", "sms"]


def _build_tpc_plus(extra: str):
    return make_tpc(extras=[build_prefetcher(extra)])

_OUT = "outside-tpc"
_IN = "inside-tpc"


@dataclass
class Fig14Row:
    prefetcher: str
    mode: str                 # "alone" or "component"
    accuracy: float           # credit accuracy in the uncovered region
    scope: float              # share of the uncovered footprint attempted
    issued: int


def _uncovered_categorizer(tpc_attempted: set[int]):
    def categorize(line: int) -> str:
        return _IN if line in tpc_attempted else _OUT

    return categorize


def run(runner: ExperimentRunner | None = None,
        apps: list[str] | None = None,
        extras: list[str] | None = None) -> list[Fig14Row]:
    runner = runner or ExperimentRunner()
    apps = apps or workload_names("spec")
    extras = extras or EXTRAS
    # Tracked runs below are uncached; the TPC-coverage and baseline
    # cells are, so they fan out.
    runner.prefill(
        [(app, "tpc") for app in apps]
        + [(app, "none") for app in apps]
    )

    # The region TPC does not cover, per app.
    uncovered: dict[str, set[int]] = {}
    for app in apps:
        tpc_result = runner.run(app, "tpc")
        uncovered[app] = tpc_result.attempted_prefetch_lines

    rows = []
    for extra in extras:
        for mode in ("alone", "component"):
            credit = 0.0
            issued = 0
            covered_weight = 0.0
            footprint_weight = 0.0
            for app in apps:
                categorize = _uncovered_categorizer(uncovered[app])
                tracker = CreditTracker(categorize=categorize)
                if mode == "alone":
                    spec = extra
                else:
                    spec = SpecFactory(f"tpc+{extra}", _build_tpc_plus,
                                       extra=extra)
                component_tag = extra
                result = runner.run_tracked(app, spec, tracker)
                bucket = tracker.bucket(component=component_tag,
                                        category=_OUT)
                credit += bucket.credit
                issued += bucket.issued
                attempted = result.attempted_by_component.get(
                    component_tag, set()
                )
                baseline = runner.baseline(app)
                tpc_lines = uncovered[app]
                for line, weight in baseline.miss_lines_l1.items():
                    if line in tpc_lines:
                        continue
                    footprint_weight += weight
                    if line in attempted:
                        covered_weight += weight
            rows.append(
                Fig14Row(
                    prefetcher=extra,
                    mode=mode,
                    accuracy=credit / issued if issued else 0.0,
                    scope=(
                        covered_weight / footprint_weight
                        if footprint_weight else 0.0
                    ),
                    issued=issued,
                )
            )
    return rows


def render(rows: list[Fig14Row]) -> str:
    return format_table(
        ["prefetcher", "mode", "accuracy (uncovered)", "scope (uncovered)",
         "issued"],
        [(r.prefetcher, r.mode, r.accuracy, r.scope, r.issued)
         for r in rows],
    )


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
