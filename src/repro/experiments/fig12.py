"""Fig. 12 — suite-average effective accuracy and coverage vs scope, at
both L1 and L2, with TPC built up incrementally (T2, then +P1, then +C1).

Paper observations: TPC's L1 effective coverage is significantly better
than the monolithic prefetchers' despite fewer prefetches (because of
better accuracy); each added component extends scope.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import (
    effective_accuracy,
    effective_coverage,
    scope,
    weighted_average,
)
from repro.analysis.report import format_table
from repro.core.composite import make_tpc
from repro.experiments.runner import (
    ExperimentRunner,
    PrefetcherSpec,
    SpecFactory,
)
from repro.prefetcher_registry import PAPER_MONOLITHIC
from repro.workloads import workload_names


def _tpc_factory(components: str) -> SpecFactory:
    return SpecFactory(f"tpc:{components}", make_tpc,
                       components=components)


INCREMENTAL_TPC: list[tuple[str, PrefetcherSpec]] = [
    ("T2", _tpc_factory("t")),
    ("T2+P1", _tpc_factory("tp")),
    ("TPC", _tpc_factory("tpc")),
]


@dataclass
class Fig12Row:
    label: str
    level: int
    scope: float
    accuracy: float
    coverage: float
    issued: float


def run(runner: ExperimentRunner | None = None,
        apps: list[str] | None = None,
        monolithic: list[str] | None = None) -> list[Fig12Row]:
    runner = runner or ExperimentRunner()
    apps = apps or workload_names("spec")
    monolithic = monolithic if monolithic is not None else PAPER_MONOLITHIC
    entries: list[tuple[str, PrefetcherSpec]] = [
        (name, name) for name in monolithic
    ]
    entries += INCREMENTAL_TPC
    runner.prefill(
        [(app, "none") for app in apps]
        + [(app, spec) for _, spec in entries for app in apps]
    )

    rows = []
    for label, spec in entries:
        for level in (1, 2):
            samples = []
            issued_total = 0
            for app in apps:
                baseline = runner.baseline(app)
                result = runner.run(app, spec)
                weight = (
                    baseline.l1_mpki if level == 1 else baseline.l2_mpki
                )
                samples.append(
                    (
                        scope(result, baseline, level),
                        effective_accuracy(result, baseline, level),
                        effective_coverage(result, baseline, level),
                        weight,
                    )
                )
                issued_total += result.prefetch.issued
            rows.append(
                Fig12Row(
                    label=label,
                    level=level,
                    scope=weighted_average((s, w) for s, _, _, w in samples),
                    accuracy=weighted_average(
                        (a, w) for _, a, _, w in samples
                    ),
                    coverage=weighted_average(
                        (c, w) for _, _, c, w in samples
                    ),
                    issued=issued_total / len(apps),
                )
            )
    return rows


def render(rows: list[Fig12Row]) -> str:
    return format_table(
        ["prefetcher", "level", "scope", "eff_accuracy", "eff_coverage",
         "avg issued"],
        [
            (r.label, f"L{r.level}", r.scope, r.accuracy, r.coverage,
             r.issued)
            for r in rows
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
