"""Shared scope-vs-accuracy scatter machinery for Figs. 1 and 10.

Both figures plot, per (prefetcher, application): prefetching scope on
the x-axis and L1 effective accuracy on the y-axis, with a suite-wide
average weighted by application miss intensity (MPKI in Fig. 10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import effective_accuracy, scope, weighted_average
from repro.experiments.runner import ExperimentRunner


@dataclass(frozen=True)
class ScatterPoint:
    prefetcher: str
    app: str
    scope: float
    accuracy: float
    weight: float            # MPKI (Fig. 1) or prefetches issued (Fig. 10)


@dataclass
class ScatterSeries:
    prefetcher: str
    points: list[ScatterPoint]

    @property
    def average_scope(self) -> float:
        return weighted_average((p.scope, p.weight) for p in self.points)

    @property
    def average_accuracy(self) -> float:
        return weighted_average((p.accuracy, p.weight) for p in self.points)


def collect_scatter(prefetchers: list[str], apps: list[str],
                    runner: ExperimentRunner | None = None,
                    weight_by: str = "mpki") -> list[ScatterSeries]:
    """Simulate each (prefetcher, app) pair and compute the scatter."""
    runner = runner or ExperimentRunner()
    runner.prefill(
        [(app, "none") for app in apps]
        + [(app, name) for name in prefetchers for app in apps]
    )
    series = []
    for name in prefetchers:
        points = []
        for app in apps:
            baseline = runner.baseline(app)
            result = runner.run(app, name)
            if weight_by == "mpki":
                weight = baseline.l1_mpki
            elif weight_by == "issued":
                weight = float(result.prefetch.issued)
            else:
                raise ValueError(f"unknown weight_by {weight_by!r}")
            points.append(
                ScatterPoint(
                    prefetcher=name,
                    app=app,
                    scope=scope(result, baseline),
                    accuracy=effective_accuracy(result, baseline),
                    weight=weight,
                )
            )
        series.append(ScatterSeries(prefetcher=name, points=points))
    return series
