"""Sensitivity sweeps: how the headline comparison moves with the
memory-system provisioning.

Two sweeps:

* **L3 capacity** — as the shared cache grows toward the working sets,
  all prefetchers' gains shrink (fewer misses to remove); the claim that
  TPC >= best monolithic should hold at every point.
* **MSHR count** — prefetcher aggressiveness is throttled by miss
  buffers; small MSHR counts punish over-aggressive designs more.

These are the "knobs a reviewer would turn" on the reproduction —
scaled-system choices should not drive the conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.metrics import geometric_mean
from repro.analysis.report import format_table
from repro.engine.config import EXPERIMENT_CONFIG
from repro.engine.system import simulate
from repro.prefetcher_registry import make_prefetcher
from repro.workloads import get_workload

# A pattern-balanced subset (stream, multi-stream, chain, region, AoP,
# gather) — one representative per category, like the suite itself.
DEFAULT_APPS = [
    "spec.libquantum",
    "spec.milc",
    "spec.mcf",
    "spec.h264ref",
    "spec.omnetpp",
    "npb.cg",
]

DEFAULT_PREFETCHERS = ["bop", "spp", "tpc"]

L3_SIZES_KB = [64, 128, 256, 512, 1024]
MSHR_COUNTS = [4, 8, 16, 32]


@dataclass
class SweepPoint:
    parameter: str
    value: int
    prefetcher: str
    speedup: float


def _geomean_speedup(config, prefetcher: str, apps: list[str]) -> float:
    speedups = []
    for app in apps:
        trace = get_workload(app).trace()
        baseline = simulate(trace, config=config)
        result = simulate(trace, make_prefetcher(prefetcher), config)
        speedups.append(baseline.cycles / result.cycles)
    return geometric_mean(speedups)


def run_l3_sweep(apps: list[str] | None = None,
                 prefetchers: list[str] | None = None,
                 sizes_kb: list[int] | None = None) -> list[SweepPoint]:
    apps = apps or DEFAULT_APPS
    prefetchers = prefetchers or DEFAULT_PREFETCHERS
    sizes_kb = sizes_kb or L3_SIZES_KB
    points = []
    for size_kb in sizes_kb:
        config = EXPERIMENT_CONFIG.with_l3_size(size_kb * 1024)
        for prefetcher in prefetchers:
            points.append(
                SweepPoint(
                    "l3_kb", size_kb, prefetcher,
                    _geomean_speedup(config, prefetcher, apps),
                )
            )
    return points


def run_mshr_sweep(apps: list[str] | None = None,
                   prefetchers: list[str] | None = None,
                   counts: list[int] | None = None) -> list[SweepPoint]:
    apps = apps or DEFAULT_APPS
    prefetchers = prefetchers or DEFAULT_PREFETCHERS
    counts = counts or MSHR_COUNTS
    points = []
    for count in counts:
        config = replace(
            EXPERIMENT_CONFIG,
            l1d=replace(EXPERIMENT_CONFIG.l1d, mshrs=count),
            l2=replace(EXPERIMENT_CONFIG.l2, mshrs=count),
        )
        for prefetcher in prefetchers:
            points.append(
                SweepPoint(
                    "mshrs", count, prefetcher,
                    _geomean_speedup(config, prefetcher, apps),
                )
            )
    return points


def render(points: list[SweepPoint]) -> str:
    return format_table(
        ["parameter", "value", "prefetcher", "geomean speedup"],
        [(p.parameter, p.value, p.prefetcher, p.speedup) for p in points],
    )


if __name__ == "__main__":  # pragma: no cover
    print(render(run_l3_sweep()))
    print()
    print(render(run_mshr_sweep()))
