"""Fig. 11 — speedups across benchmark suites, including 4-core mixes.

Paper result: the conclusion generalizes beyond SPEC — across all 68
workloads TPC achieves 1.39 geomean vs 1.22-1.31 for the other seven.

Single-core suites report geomean speedup over the no-prefetch baseline.
For the 4-core mixes, each application's speedup is its shared-mode IPC
with the prefetcher over its shared-mode IPC without ("weighted speedup
for each application"), averaged per mix and summarized by geomean.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import geometric_mean
from repro.analysis.report import format_table
from repro.engine.multicore import simulate_multicore
from repro.experiments.runner import (
    ExperimentRunner,
    build_prefetcher,
)
from repro.prefetcher_registry import PAPER_MONOLITHIC
from repro.workloads import get_workload, workload_names
from repro.workloads.mixes import mix_names

PREFETCHERS = PAPER_MONOLITHIC + ["tpc"]
SINGLE_CORE_SUITES = ["spec", "crono", "starbench", "npb"]


@dataclass
class SuiteSpeedups:
    suite: str
    geomeans: dict[str, float]    # prefetcher -> geomean speedup


def _suite_speedups(suite: str, prefetchers: list[str],
                    runner: ExperimentRunner) -> SuiteSpeedups:
    apps = workload_names(suite)
    geomeans = {}
    for name in prefetchers:
        speedups = []
        for app in apps:
            baseline = runner.baseline(app)
            result = runner.run(app, name)
            speedups.append(baseline.cycles / result.cycles)
        geomeans[name] = geometric_mean(speedups)
    return SuiteSpeedups(suite=suite, geomeans=geomeans)


def _mix_speedups(prefetchers: list[str], mix_count: int,
                  runner: ExperimentRunner) -> SuiteSpeedups:
    geomeans: dict[str, float] = {name: [] for name in prefetchers}
    for names in mix_names(mix_count):
        traces = [get_workload(n).trace() for n in names]
        shared_baseline = simulate_multicore(
            traces, [build_prefetcher("none") for _ in names],
            runner.config,
        )
        for prefetcher in prefetchers:
            shared = simulate_multicore(
                traces, [build_prefetcher(prefetcher) for _ in names],
                runner.config,
            )
            per_app = [
                with_pf.ipc / without.ipc
                for with_pf, without in zip(shared.per_core,
                                            shared_baseline.per_core)
                if without.ipc > 0
            ]
            geomeans[prefetcher].append(sum(per_app) / len(per_app))
    return SuiteSpeedups(
        suite="mixes-4core",
        geomeans={
            name: geometric_mean(values)
            for name, values in geomeans.items()
        },
    )


def run(runner: ExperimentRunner | None = None,
        prefetchers: list[str] | None = None,
        suites: list[str] | None = None,
        mix_count: int = 4) -> list[SuiteSpeedups]:
    runner = runner or ExperimentRunner()
    prefetchers = prefetchers or PREFETCHERS
    suites = suites if suites is not None else SINGLE_CORE_SUITES
    # The 4-core mixes share L3/DRAM state, so only the single-core
    # suites are independent cells; they fan out, the mixes stay serial.
    single_core_apps = [
        app for suite in suites for app in workload_names(suite)
    ]
    runner.prefill(
        [(app, "none") for app in single_core_apps]
        + [(app, name) for name in prefetchers
           for app in single_core_apps]
    )
    results = [
        _suite_speedups(suite, prefetchers, runner) for suite in suites
    ]
    if mix_count > 0:
        results.append(_mix_speedups(prefetchers, mix_count, runner))
    return results


def render(results: list[SuiteSpeedups]) -> str:
    prefetchers = list(results[0].geomeans)
    headers = ["suite"] + prefetchers
    rows = [
        [r.suite] + [r.geomeans[p] for p in prefetchers] for r in results
    ]
    return format_table(headers, rows)


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
