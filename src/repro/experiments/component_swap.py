"""Component replacement (paper Sec. V-C2):

"If an existing prefetcher design has better accuracies than one of our
components in its scope of prefetch, we can replace the component."

The paper found no such case among its candidates; this experiment makes
the check executable: each TPC component is replaced by the monolithic
prefetcher closest to its scope (T2 -> SPP or stride; C1 -> SMS), and the
composite is re-measured.  A replacement winning would be exactly the
paper's "lower barrier to innovation" in action.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import geometric_mean
from repro.analysis.report import format_table
from repro.baselines.sms import SmsPrefetcher
from repro.baselines.spp import SppPrefetcher
from repro.baselines.stride import StridePrefetcher
from repro.core.c1 import C1Prefetcher
from repro.core.composite import CompositePrefetcher
from repro.core.p1 import P1Prefetcher
from repro.core.t2 import T2Prefetcher
from repro.experiments.runner import ExperimentRunner

DEFAULT_APPS = [
    "spec.libquantum",
    "spec.milc",
    "spec.mcf",
    "spec.omnetpp",
    "spec.h264ref",
    "spec.soplex",
    "npb.mg",
    "crono.bfs_google",
]


def _composite(name: str, components) -> CompositePrefetcher:
    composite = CompositePrefetcher(list(components), name=name)
    composite._wire_components()
    return composite


def _variants():
    return {
        "tpc": lambda: _composite(
            "tpc", [T2Prefetcher(), P1Prefetcher(), C1Prefetcher()]
        ),
        "spp/P1/C1": lambda: _composite(
            "spp-p1-c1",
            [SppPrefetcher(), P1Prefetcher(), C1Prefetcher()],
        ),
        "stride/P1/C1": lambda: _composite(
            "stride-p1-c1",
            [StridePrefetcher(), P1Prefetcher(), C1Prefetcher()],
        ),
        "T2/P1/sms": lambda: _composite(
            "t2-p1-sms",
            [T2Prefetcher(), P1Prefetcher(),
             SmsPrefetcher(target_level=2)],
        ),
    }


@dataclass
class SwapRow:
    variant: str
    speedup: float
    issued: float


def run(runner: ExperimentRunner | None = None,
        apps: list[str] | None = None) -> list[SwapRow]:
    runner = runner or ExperimentRunner()
    apps = apps or DEFAULT_APPS
    rows = []
    for label, factory in _variants().items():
        factory.cache_key = f"swap:{label}"
        speedups = []
        issued = 0
        for app in apps:
            baseline = runner.baseline(app)
            result = runner.run(app, factory)
            speedups.append(baseline.cycles / result.cycles)
            issued += result.prefetch.issued
        rows.append(
            SwapRow(
                variant=label,
                speedup=geometric_mean(speedups),
                issued=issued / len(apps),
            )
        )
    return rows


def render(rows: list[SwapRow]) -> str:
    return format_table(
        ["composite", "geomean speedup", "avg issued"],
        [(r.variant, r.speedup, r.issued) for r in rows],
    )


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
