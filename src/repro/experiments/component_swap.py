"""Component replacement (paper Sec. V-C2):

"If an existing prefetcher design has better accuracies than one of our
components in its scope of prefetch, we can replace the component."

The paper found no such case among its candidates; this experiment makes
the check executable: each TPC component is replaced by the monolithic
prefetcher closest to its scope (T2 -> SPP or stride; C1 -> SMS), and the
composite is re-measured.  A replacement winning would be exactly the
paper's "lower barrier to innovation" in action.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import geometric_mean
from repro.analysis.report import format_table
from repro.baselines.sms import SmsPrefetcher
from repro.baselines.spp import SppPrefetcher
from repro.baselines.stride import StridePrefetcher
from repro.core.c1 import C1Prefetcher
from repro.core.composite import CompositePrefetcher
from repro.core.p1 import P1Prefetcher
from repro.core.t2 import T2Prefetcher
from repro.experiments.runner import ExperimentRunner, SpecFactory

DEFAULT_APPS = [
    "spec.libquantum",
    "spec.milc",
    "spec.mcf",
    "spec.omnetpp",
    "spec.h264ref",
    "spec.soplex",
    "npb.mg",
    "crono.bfs_google",
]


def _composite(name: str, components) -> CompositePrefetcher:
    composite = CompositePrefetcher(list(components), name=name)
    composite._wire_components()
    return composite


_VARIANT_PARTS = {
    "tpc": ("tpc", (T2Prefetcher, P1Prefetcher, C1Prefetcher)),
    "spp/P1/C1": (
        "spp-p1-c1", (SppPrefetcher, P1Prefetcher, C1Prefetcher)
    ),
    "stride/P1/C1": (
        "stride-p1-c1", (StridePrefetcher, P1Prefetcher, C1Prefetcher)
    ),
    "T2/P1/sms": (
        "t2-p1-sms",
        (T2Prefetcher, P1Prefetcher,
         lambda: SmsPrefetcher(target_level=2)),
    ),
}


def _build_swap(label: str):
    name, parts = _VARIANT_PARTS[label]
    return _composite(name, [part() for part in parts])


def _variants():
    return {
        label: SpecFactory(f"swap:{label}", _build_swap, label=label)
        for label in _VARIANT_PARTS
    }


@dataclass
class SwapRow:
    variant: str
    speedup: float
    issued: float


def run(runner: ExperimentRunner | None = None,
        apps: list[str] | None = None) -> list[SwapRow]:
    runner = runner or ExperimentRunner()
    apps = apps or DEFAULT_APPS
    variants = _variants()
    runner.prefill(
        [(app, "none") for app in apps]
        + [(app, factory) for factory in variants.values()
           for app in apps]
    )
    rows = []
    for label, factory in variants.items():
        speedups = []
        issued = 0
        for app in apps:
            baseline = runner.baseline(app)
            result = runner.run(app, factory)
            speedups.append(baseline.cycles / result.cycles)
            issued += result.prefetch.issued
        rows.append(
            SwapRow(
                variant=label,
                speedup=geometric_mean(speedups),
                issued=issued / len(apps),
            )
        )
    return rows


def render(rows: list[SwapRow]) -> str:
    return format_table(
        ["composite", "geomean speedup", "avg issued"],
        [(r.variant, r.speedup, r.issued) for r in rows],
    )


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
