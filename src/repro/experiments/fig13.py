"""Fig. 13 — effective accuracy and scope by access category
(LHF / MHF / HHF), per prefetcher.

The offline classifier (Sec. V-C1) labels cache lines; every prefetch is
labeled with its target's category and earns +-credits via the
alternative-reality accounting.  Paper observations:

* most prefetches land in LHF, where T2's accuracy stands out;
* monolithic prefetchers have high MHF scope but 32-56% accuracy,
  vs C1's 61%;
* HHF is where accuracies go negative for monolithic designs (best
  average only 38%), while P1 reaches 86% on a limited scope.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.classify import Category, OfflineClassifier
from repro.analysis.credit import CreditTracker
from repro.analysis.report import format_table
from repro.experiments.runner import ExperimentRunner
from repro.prefetcher_registry import PAPER_MONOLITHIC
from repro.workloads import get_workload, workload_names

PREFETCHERS = PAPER_MONOLITHIC + ["tpc"]

_classifier_cache: dict[str, OfflineClassifier] = {}


def classifier_for(app: str) -> OfflineClassifier:
    classifier = _classifier_cache.get(app)
    if classifier is None:
        classifier = OfflineClassifier(get_workload(app).trace())
        _classifier_cache[app] = classifier
    return classifier


@dataclass
class CategoryRow:
    prefetcher: str
    category: Category
    issued: int
    accuracy: float          # credit-based effective accuracy
    scope: float             # share of this category's miss footprint


def run(runner: ExperimentRunner | None = None,
        apps: list[str] | None = None,
        prefetchers: list[str] | None = None) -> list[CategoryRow]:
    runner = runner or ExperimentRunner()
    apps = apps or workload_names("spec")
    prefetchers = prefetchers or PREFETCHERS
    # Tracked runs are never cached (the tracker is a side output), but
    # the baselines they are scored against are ordinary cells.
    runner.prefill([(app, "none") for app in apps])

    rows = []
    for name in prefetchers:
        issued = {c: 0 for c in Category}
        credit = {c: 0.0 for c in Category}
        covered_weight = {c: 0.0 for c in Category}
        footprint_weight = {c: 0.0 for c in Category}
        for app in apps:
            classifier = classifier_for(app)
            tracker = CreditTracker(categorize=classifier.category)
            result = runner.run_tracked(app, name, tracker)
            baseline = runner.baseline(app)
            for category in Category:
                bucket = tracker.bucket(category=category)
                issued[category] += bucket.issued
                credit[category] += bucket.credit
            attempted = result.attempted_prefetch_lines
            for line, weight in baseline.miss_lines_l1.items():
                category = classifier.category(line)
                footprint_weight[category] += weight
                if line in attempted:
                    covered_weight[category] += weight
        for category in Category:
            rows.append(
                CategoryRow(
                    prefetcher=name,
                    category=category,
                    issued=issued[category],
                    accuracy=(
                        credit[category] / issued[category]
                        if issued[category] else 0.0
                    ),
                    scope=(
                        covered_weight[category] / footprint_weight[category]
                        if footprint_weight[category] else 0.0
                    ),
                )
            )
    return rows


def render(rows: list[CategoryRow]) -> str:
    return format_table(
        ["prefetcher", "category", "issued", "credit accuracy", "scope"],
        [
            (r.prefetcher, r.category.value, r.issued, r.accuracy, r.scope)
            for r in rows
        ],
    )


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
