"""Fig. 16 — effect of the prefetch destination: everything into L2,
everything into L1, or stratified by access category.

For the monolithic prefetchers the stratification is an *oracle*: the
offline classifier (the same "analysis mechanism similar to having an
oracle" the paper uses) routes LHF-targeted prefetches to L1 and the rest
to L2.  TPC needs no oracle — its components perform the stratification
naturally (T2/P1 -> L1, C1 -> L2), which is the point of the figure.

Paper result: prefetching into L1 beats L2-only on average; per-category
destinations do better still.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.classify import Category
from repro.analysis.metrics import geometric_mean
from repro.analysis.report import format_table
from repro.core.base import AccessEvent, Prefetcher
from repro.core.composite import make_tpc
from repro.experiments.fig13 import classifier_for
from repro.experiments.runner import (
    ExperimentRunner,
    SpecFactory,
    build_prefetcher,
)
from repro.prefetcher_registry import PAPER_MONOLITHIC
from repro.workloads import workload_names

PREFETCHERS = PAPER_MONOLITHIC + ["tpc"]
MODES = ["L2", "L1", "stratified"]


class OracleDestinationPrefetcher(Prefetcher):
    """Wraps a prefetcher and rewrites each request's destination by the
    oracle category of its target line (LHF -> L1, MHF/HHF -> L2)."""

    def __init__(self, inner: Prefetcher, categorize) -> None:
        self.inner = inner
        self.categorize = categorize
        self.name = f"{inner.name}@oracle"
        self.needs_instruction_stream = inner.needs_instruction_stream
        self.wants_memory_image = inner.wants_memory_image

    def reset(self) -> None:
        self.inner.reset()

    def set_memory(self, memory) -> None:
        self.inner.set_memory(memory)

    def observe_instruction(self, record, cycle: int) -> None:
        self.inner.observe_instruction(record, cycle)

    def observe_access(self, event: AccessEvent) -> None:
        self.inner.observe_access(event)

    def on_access(self, event: AccessEvent):
        requests = self.inner.on_access(event)
        if not requests:
            return requests
        for request in requests:
            request.target_level = (
                1 if self.categorize(request.line) is Category.LHF else 2
            )
        return requests

    def on_fill(self, line: int, level: int,
                prefetched: bool = False) -> None:
        self.inner.on_fill(line, level, prefetched)

    def on_prefetch_hit(self, line: int, level: int) -> None:
        self.inner.on_prefetch_hit(line, level)

    @property
    def storage_bits(self) -> int:
        return self.inner.storage_bits


def _build_tpc_at(level: int) -> Prefetcher:
    kwargs = {"target_level": level}
    return make_tpc(t2_kwargs=kwargs, p1_kwargs=kwargs, c1_kwargs=kwargs)


def _build_oracle(name: str, app: str) -> Prefetcher:
    """Oracle stratification: route by the app's offline classifier.

    Workers rebuild the classifier from the (seeded, deterministic)
    trace; the per-process cache in :mod:`repro.experiments.fig13`
    amortizes it across the cells that share an app.
    """
    classifier = classifier_for(app)
    return OracleDestinationPrefetcher(
        build_prefetcher(name), classifier.category
    )


def _spec_for(name: str, mode: str, app: str):
    """Build the prefetcher spec (with stable cache key) for one cell."""
    if name == "tpc":
        if mode == "stratified":
            return "tpc"  # native component-based destinations
        level = 1 if mode == "L1" else 2
        return SpecFactory(f"tpc@{mode}", _build_tpc_at, level=level)

    if mode in ("L1", "L2"):
        level = 1 if mode == "L1" else 2
        return SpecFactory(f"{name}@{mode}", build_prefetcher_with_level,
                           name=name, level=level)

    return SpecFactory(f"{name}@oracle:{app}", _build_oracle,
                       name=name, app=app)


def build_prefetcher_with_level(name: str, level: int) -> Prefetcher:
    from repro.prefetcher_registry import make_prefetcher

    return make_prefetcher(name, target_level=level)


@dataclass
class Fig16Row:
    prefetcher: str
    mode: str
    average: float
    low: float
    high: float


def run(runner: ExperimentRunner | None = None,
        apps: list[str] | None = None,
        prefetchers: list[str] | None = None) -> list[Fig16Row]:
    runner = runner or ExperimentRunner()
    apps = apps or workload_names("spec")
    prefetchers = prefetchers or PREFETCHERS
    runner.prefill(
        [(app, "none") for app in apps]
        + [(app, _spec_for(name, mode, app))
           for name in prefetchers for mode in MODES for app in apps]
    )

    rows = []
    for name in prefetchers:
        for mode in MODES:
            speedups = []
            for app in apps:
                baseline = runner.baseline(app)
                result = runner.run(app, _spec_for(name, mode, app))
                speedups.append(baseline.cycles / result.cycles)
            rows.append(
                Fig16Row(
                    prefetcher=name,
                    mode=mode,
                    average=geometric_mean(speedups),
                    low=min(speedups),
                    high=max(speedups),
                )
            )
    return rows


def render(rows: list[Fig16Row]) -> str:
    return format_table(
        ["prefetcher", "destination", "speedup (geomean)", "min", "max"],
        [(r.prefetcher, r.mode, r.average, r.low, r.high) for r in rows],
    )


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
