"""Table I (system configuration) and Table II (storage cost)."""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.analysis.storage import storage_table
from repro.engine.config import DEFAULT_CONFIG, EXPERIMENT_CONFIG


def run_table1() -> list[tuple[str, str, str]]:
    """(parameter, Table I value, experiment value) rows."""
    full = DEFAULT_CONFIG
    scaled = EXPERIMENT_CONFIG

    def kb(n: int) -> str:
        return f"{n // 1024}KB"

    return [
        ("core width", str(full.core.width), str(scaled.core.width)),
        ("ROB entries", str(full.core.rob_entries),
         str(scaled.core.rob_entries)),
        ("branch miss penalty", str(full.core.branch_miss_penalty),
         str(scaled.core.branch_miss_penalty)),
        ("L1D size/ways", f"{kb(full.l1d.size_bytes)}/{full.l1d.ways}w",
         f"{kb(scaled.l1d.size_bytes)}/{scaled.l1d.ways}w"),
        ("L1D latency (cyc)", str(full.l1d.latency), str(scaled.l1d.latency)),
        ("L1 MSHRs", str(full.l1d.mshrs), str(scaled.l1d.mshrs)),
        ("L2 size/ways", f"{kb(full.l2.size_bytes)}/{full.l2.ways}w",
         f"{kb(scaled.l2.size_bytes)}/{scaled.l2.ways}w"),
        ("L2 latency (cyc)", str(full.l2.latency), str(scaled.l2.latency)),
        ("L3 size/ways", f"{kb(full.l3.size_bytes)}/{full.l3.ways}w",
         f"{kb(scaled.l3.size_bytes)}/{scaled.l3.ways}w"),
        ("L3 latency (cyc)", str(full.l3.latency), str(scaled.l3.latency)),
        ("DRAM channels", str(full.dram.channels), str(scaled.dram.channels)),
        ("DRAM banks/rank", str(full.dram.banks_per_rank),
         str(scaled.dram.banks_per_rank)),
        ("tRCD/tRP (cyc)", f"{full.dram.t_rcd}/{full.dram.t_rp}",
         f"{scaled.dram.t_rcd}/{scaled.dram.t_rp}"),
    ]


def render_table1(rows=None) -> str:
    rows = rows if rows is not None else run_table1()
    return format_table(
        ["parameter", "Table I (paper)", "experiment (scaled)"], rows
    )


def run_table2():
    """Table II rows (modeled vs paper storage)."""
    return storage_table()


def render_table2(rows=None) -> str:
    rows = rows if rows is not None else run_table2()
    return format_table(
        ["prefetcher", "modeled KB", "paper KB", "ratio"],
        [(r.name, r.model_kb, r.paper_kb, r.ratio) for r in rows],
    )


if __name__ == "__main__":  # pragma: no cover
    print("Table I — system configuration")
    print(render_table1())
    print()
    print("Table II — prefetcher storage cost")
    print(render_table2())
