"""Experiment harness: one module per reproduced paper artifact.

==========  ========================================================
module      paper artifact
==========  ========================================================
tables      Table I (system config) and Table II (storage cost)
fig01       Fig. 1 — accuracy vs scope for AMPM/BOP/SMS
fig08       Fig. 8 — per-application speedups, all prefetchers
fig09       Fig. 9 — normalized memory traffic
fig10       Fig. 10 — effective accuracy vs scope, all prefetchers
fig11       Fig. 11 — speedups per suite including 4-core mixes
fig12       Fig. 12 — accuracy/coverage vs scope at L1 and L2, with
            TPC built up incrementally (T2, +P1, +C1)
fig13       Fig. 13 — accuracy vs scope by LHF/MHF/HHF category
fig14       Fig. 14 — existing prefetchers alone vs as TPC components
fig15       Fig. 15 — shunting vs compositing
fig16       Fig. 16 — prefetch destination (L2 / L1 / stratified)
drop_policy Sec. V-C1 — memory-controller prefetch-drop policy
==========  ========================================================

Every module exposes ``run(...)`` returning structured results and
``render(results)`` returning the printable table; running the module as
a script prints it.  The shared :class:`~repro.experiments.runner
.ExperimentRunner` caches (workload, prefetcher) simulation results
within the process.
"""

from repro.experiments.runner import ExperimentRunner

__all__ = ["ExperimentRunner"]
