"""Sec. V-C1 drop-policy experiment.

"We change the memory controller such that when it is forced to drop a
request (when the queue fills up) it chooses low-probability prefetches
(in our case from the C1 component).  Compared to the default option
where the memory controller randomly drops prefetches, this change alone
accounts for an average of 6% performance gain in a multicore
environment."

The experiment runs 4-core mixes with TPC on every core under a
deliberately small memory-controller queue (so drops actually happen)
and compares the two drop policies.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.metrics import geometric_mean
from repro.analysis.report import format_table
from repro.engine.config import EXPERIMENT_CONFIG, SystemConfig
from repro.engine.multicore import simulate_multicore
from repro.experiments.runner import build_prefetcher
from repro.memory.dram import DropPolicy
from repro.workloads import get_workload
from repro.workloads.mixes import mix_names  # noqa: F401 (custom mixes kwarg)

QUEUE_CAPACITY = 4  # small queue so the drop path is exercised

DROP_MIXES = [
    ["spec.h264ref", "spec.libquantum", "spec.milc", "starbench.rotate"],
    ["spec.perlbench", "spec.lbm", "starbench.rotate", "spec.zeusmp"],
    ["spec.h264ref", "spec.gemsfdtd", "spec.cactusadm", "starbench.rgbyuv"],
    ["starbench.rotate", "spec.milc", "spec.h264ref", "npb.mg"],
]
"""Mixes pairing C1-heavy (region) workloads with bandwidth-hungry
streams, so the controller actually faces the C1-vs-T2 shed decision the
paper's experiment is about."""


@dataclass
class DropPolicyResult:
    mix: list[str]
    random_speedup: float        # avg per-app speedup vs no-prefetch shared
    priority_speedup: float
    random_drops: int
    priority_drops: int

    @property
    def gain(self) -> float:
        if self.random_speedup == 0:
            return 0.0
        return self.priority_speedup / self.random_speedup


def _config_with(policy: DropPolicy,
                 base: SystemConfig | None = None) -> SystemConfig:
    base = base or EXPERIMENT_CONFIG
    return replace(
        base,
        dram=replace(base.dram, drop_policy=policy,
                     queue_capacity=QUEUE_CAPACITY),
    )


def _mix_speedup(traces, prefetcher_name: str,
                 config: SystemConfig) -> tuple[float, int]:
    baseline = simulate_multicore(
        traces, [build_prefetcher("none") for _ in traces], config
    )
    with_pf = simulate_multicore(
        traces, [build_prefetcher(prefetcher_name) for _ in traces], config
    )
    per_app = [
        pf.ipc / base.ipc
        for pf, base in zip(with_pf.per_core, baseline.per_core)
        if base.ipc > 0
    ]
    drops = with_pf.per_core[0].dram.dropped_prefetches
    return sum(per_app) / len(per_app), drops


def run(mix_count: int = 4, prefetcher: str = "tpc",
        mixes: list[list[str]] | None = None) -> list[DropPolicyResult]:
    if mixes is None:
        mixes = DROP_MIXES[:mix_count]
    results = []
    for names in mixes:
        traces = [get_workload(n).trace() for n in names]
        random_speedup, random_drops = _mix_speedup(
            traces, prefetcher, _config_with(DropPolicy.RANDOM)
        )
        priority_speedup, priority_drops = _mix_speedup(
            traces, prefetcher, _config_with(DropPolicy.LOW_PRIORITY_FIRST)
        )
        results.append(
            DropPolicyResult(
                mix=names,
                random_speedup=random_speedup,
                priority_speedup=priority_speedup,
                random_drops=random_drops,
                priority_drops=priority_drops,
            )
        )
    return results


def render(results: list[DropPolicyResult]) -> str:
    rows = [
        ("+".join(n.split(".")[-1] for n in r.mix), r.random_speedup,
         r.priority_speedup, r.gain, r.random_drops, r.priority_drops)
        for r in results
    ]
    average = geometric_mean([r.gain for r in results])
    rows.append(("== geomean gain ==", "", "", average, "", ""))
    return format_table(
        ["mix", "random drop", "C1-first drop", "gain", "drops(rand)",
         "drops(prio)"],
        rows,
    )


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
