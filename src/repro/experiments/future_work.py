"""The paper's future-work direction, implemented (recap item 3):

"TPC currently lacks in HHF scope, suggesting more components targeting
this area will be helpful. ... Further specialization is likely to
deliver additional benefits."

This experiment adds two candidate HHF components behind TPC's
coordinator — a Markov (temporal-correlation) predictor and an ISB-style
irregular stream buffer, both classic designs the related-work section
discusses — and measures each one's marginal effect on
pointer/irregular-heavy workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import geometric_mean
from repro.analysis.report import format_table
from repro.baselines.isb import IsbPrefetcher
from repro.baselines.markov import MarkovPrefetcher
from repro.core.composite import make_tpc
from repro.experiments.runner import ExperimentRunner, SpecFactory

HHF_HEAVY_APPS = [
    "spec.mcf",
    "spec.xalancbmk",
    "spec.sjeng",
    "spec.gobmk",
    "npb.is",
    "crono.bfs_google",
    "crono.sssp_twitter",
]

EXTRA_FACTORIES = {
    "markov": MarkovPrefetcher,
    "isb": IsbPrefetcher,
}


def _build_tpc_plus(extra: str):
    return make_tpc(extras=[EXTRA_FACTORIES[extra]()])


def _tpc_plus_factory(extra: str) -> SpecFactory:
    return SpecFactory(f"tpc+{extra}", _build_tpc_plus, extra=extra)


@dataclass
class FutureWorkRow:
    app: str
    extra: str
    tpc: float
    extra_alone: float
    tpc_plus_extra: float

    @property
    def marginal(self) -> float:
        if self.tpc == 0:
            return 0.0
        return self.tpc_plus_extra / self.tpc


def run(runner: ExperimentRunner | None = None,
        apps: list[str] | None = None,
        extras: list[str] | None = None) -> list[FutureWorkRow]:
    runner = runner or ExperimentRunner()
    apps = apps or HHF_HEAVY_APPS
    extras = extras or list(EXTRA_FACTORIES)
    runner.prefill(
        [(app, spec) for app in apps
         for extra in extras
         for spec in ("none", "tpc", extra, _tpc_plus_factory(extra))]
    )
    rows = []
    for extra in extras:
        factory = _tpc_plus_factory(extra)
        for app in apps:
            baseline = runner.baseline(app)
            rows.append(
                FutureWorkRow(
                    app=app,
                    extra=extra,
                    tpc=baseline.cycles / runner.run(app, "tpc").cycles,
                    extra_alone=(
                        baseline.cycles / runner.run(app, extra).cycles
                    ),
                    tpc_plus_extra=(
                        baseline.cycles / runner.run(app, factory).cycles
                    ),
                )
            )
    return rows


def render(rows: list[FutureWorkRow]) -> str:
    body = format_table(
        ["app", "extra", "tpc", "extra alone", "tpc+extra", "marginal"],
        [(r.app, r.extra, r.tpc, r.extra_alone, r.tpc_plus_extra,
          r.marginal) for r in rows],
    )
    lines = [body, ""]
    for extra in sorted({r.extra for r in rows}):
        marginal = geometric_mean(
            [r.marginal for r in rows if r.extra == extra]
        )
        lines.append(
            f"geomean marginal effect of +{extra}: {marginal:.3f}"
        )
    return "\n".join(lines)


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
