"""Fig. 15 — compositing vs shunting an existing prefetcher with TPC.

Paper result: composited (coordinator-filtered) extras are never worse
than TPC alone and average 3-8% better; shunted (mutually unaware)
combinations are almost always worse than TPC alone (1-6% on average).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import geometric_mean
from repro.analysis.report import format_table
from repro.core.composite import make_shunt, make_tpc
from repro.experiments.runner import (
    ExperimentRunner,
    SpecFactory,
    build_prefetcher,
)
from repro.workloads import workload_names

EXTRAS = ["vldp", "spp", "fdp", "sms"]


def _build_composite(extra: str):
    return make_tpc(extras=[build_prefetcher(extra)])


def _build_shunt(extra: str):
    return make_shunt([build_prefetcher(extra)])


@dataclass
class Fig15Row:
    extra: str
    mode: str                 # "composite" or "shunt"
    average: float            # geomean speedup normalized to TPC alone
    low: float
    high: float


def _composite_factory(extra: str) -> SpecFactory:
    return SpecFactory(f"tpc+{extra}", _build_composite, extra=extra)


def _shunt_factory(extra: str) -> SpecFactory:
    return SpecFactory(f"shunt:tpc+{extra}", _build_shunt, extra=extra)


def run(runner: ExperimentRunner | None = None,
        apps: list[str] | None = None,
        extras: list[str] | None = None) -> list[Fig15Row]:
    runner = runner or ExperimentRunner()
    apps = apps or workload_names("spec")
    extras = extras or EXTRAS
    runner.prefill(
        [(app, "tpc") for app in apps]
        + [(app, factory) for extra in extras
           for factory in (_composite_factory(extra),
                           _shunt_factory(extra))
           for app in apps]
    )

    rows = []
    for extra in extras:
        for mode, factory in (
            ("composite", _composite_factory(extra)),
            ("shunt", _shunt_factory(extra)),
        ):
            ratios = []
            for app in apps:
                tpc_alone = runner.run(app, "tpc")
                combined = runner.run(app, factory)
                ratios.append(tpc_alone.cycles / combined.cycles)
            rows.append(
                Fig15Row(
                    extra=extra,
                    mode=mode,
                    average=geometric_mean(ratios),
                    low=min(ratios),
                    high=max(ratios),
                )
            )
    return rows


def render(rows: list[Fig15Row]) -> str:
    return format_table(
        ["extra", "mode", "speedup vs TPC (geomean)", "min", "max"],
        [(r.extra, r.mode, r.average, r.low, r.high) for r in rows],
    )


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
