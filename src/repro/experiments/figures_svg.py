"""Emit the paper's figures as SVG files.

``python -m repro.experiments.figures_svg [output_dir]`` renders:

* fig01.svg / fig10.svg — accuracy-vs-scope scatters,
* fig08.svg — per-prefetcher geomean speedups,
* fig09.svg — normalized traffic with min/max I-beams,
* fig15.svg — compositing vs shunting,
* fig16.svg — destination comparison.

The SVG renderer is dependency-free (`repro.analysis.svgplot`).
"""

from __future__ import annotations

import os
import sys

from repro.analysis import svgplot
from repro.experiments import fig01, fig08, fig09, fig10, fig15, fig16
from repro.experiments.runner import ExperimentRunner


def _scatter_series(series_list):
    return [
        svgplot.ScatterSeries(
            label=s.prefetcher,
            points=[(p.scope, p.accuracy, p.weight) for p in s.points],
        )
        for s in series_list
    ]


def generate(output_dir: str,
             runner: ExperimentRunner | None = None) -> list[str]:
    """Render every figure; returns the written paths."""
    runner = runner or ExperimentRunner()
    os.makedirs(output_dir, exist_ok=True)
    written = []

    def write(name: str, svg: str) -> None:
        path = os.path.join(output_dir, name)
        with open(path, "w") as handle:
            handle.write(svg)
        written.append(path)

    write("fig01.svg", svgplot.scatter_svg(
        _scatter_series(fig01.run(runner)),
        title="Fig. 1 — accuracy vs scope (AMPM/BOP/SMS)",
    ))

    grid = fig08.run(runner)
    write("fig08.svg", svgplot.bars_svg(
        {p: grid.geomean(p) for p in grid.prefetchers},
        title="Fig. 8 — geomean speedup (SPEC-like suite)",
    ))

    traffic = fig09.run(runner)
    write("fig09.svg", svgplot.bars_svg(
        {r.prefetcher: r.geomean for r in traffic},
        ranges={r.prefetcher: (r.low, r.high) for r in traffic},
        title="Fig. 9 — normalized memory traffic",
        y_label="traffic vs no-prefetch",
    ))

    write("fig10.svg", svgplot.scatter_svg(
        _scatter_series(fig10.run(runner)),
        title="Fig. 10 — accuracy vs scope (all prefetchers)",
    ))

    fifteen = fig15.run(runner)
    write("fig15.svg", svgplot.bars_svg(
        {f"{r.extra}-{r.mode[:4]}": r.average for r in fifteen},
        ranges={f"{r.extra}-{r.mode[:4]}": (r.low, r.high)
                for r in fifteen},
        title="Fig. 15 — compositing vs shunting (vs TPC alone)",
        y_label="speedup vs TPC",
    ))

    sixteen = fig16.run(runner)
    write("fig16.svg", svgplot.bars_svg(
        {f"{r.prefetcher}-{r.mode}": r.average for r in sixteen
         if r.prefetcher in ("bop", "sms", "tpc")},
        title="Fig. 16 — prefetch destination (subset)",
    ))
    return written


def main(argv: list[str] | None = None) -> None:
    argv = argv if argv is not None else sys.argv[1:]
    output_dir = argv[0] if argv else "figures"
    for path in generate(output_dir):
        print(path, file=sys.stderr)


if __name__ == "__main__":  # pragma: no cover
    main()
