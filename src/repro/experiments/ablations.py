"""Ablations of the design choices DESIGN.md calls out.

Each ablation disables or perturbs one mechanism of the composite design
and reports the geomean speedup over the no-prefetch baseline on a
pattern-diverse app subset, next to the full TPC:

* ``no-miss-activation`` — T2 tracks every memory instruction instead of
  activating on a primary miss (paper Sec. IV-A-2, first modification).
* ``plain-pc`` — the SIT indexed by plain PC instead of
  ``mPC = PC xor RAS.top`` (second modification).
* ``strided-8`` / ``strided-32`` — halve/double the 16-instance
  strided-labeling threshold (the paper claims insensitivity).
* ``no-boost`` — P1's strided-pointer triggers do not double T2's
  distance (Sec. IV-B-1).
* ``c1-dense-3`` / ``c1-dense-10`` — C1's dense-region line threshold.
* ``order-cpt`` — coordinator priority reversed (C1 -> P1 -> T2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import geometric_mean
from repro.analysis.report import format_table
from repro.core.c1 import C1Prefetcher
from repro.core.composite import CompositePrefetcher, make_tpc
from repro.core.p1 import P1Prefetcher
from repro.core.t2 import T2Prefetcher
from repro.experiments.runner import ExperimentRunner, SpecFactory

DEFAULT_APPS = [
    "spec.libquantum",
    "spec.milc",
    "spec.mcf",
    "spec.omnetpp",
    "spec.h264ref",
    "spec.perlbench",
    "spec.soplex",
    "npb.mg",
    "starbench.bodytrack",   # exercises the mPC (plain-pc) knob
]


def _reversed_order():
    composite = CompositePrefetcher(
        [C1Prefetcher(), P1Prefetcher(), T2Prefetcher()],
        name="order-cpt",
    )
    composite._wire_components()
    return composite


def _build_variant(key: str):
    builders = {
        "tpc": lambda: make_tpc(),
        "no-miss-activation": lambda: make_tpc(
            t2_kwargs={"activate_on_miss": False}
        ),
        "plain-pc": lambda: make_tpc(t2_kwargs={"use_mpc": False}),
        "strided-8": lambda: make_tpc(
            t2_kwargs={"strided_threshold": 8}
        ),
        "strided-32": lambda: make_tpc(
            t2_kwargs={"strided_threshold": 32}
        ),
        "no-boost": lambda: make_tpc(boost_pointer_triggers=False),
        "c1-dense-3": lambda: make_tpc(
            c1_kwargs={"dense_line_threshold": 3}
        ),
        "c1-dense-10": lambda: make_tpc(
            c1_kwargs={"dense_line_threshold": 10}
        ),
        "order-cpt": _reversed_order,
    }
    return builders[key]()


def _variant(key: str) -> SpecFactory:
    """Factory for one ablation variant (with a stable cache key)."""
    return SpecFactory(f"ablation:{key}", _build_variant, key=key)

VARIANTS = [
    "tpc",
    "no-miss-activation",
    "plain-pc",
    "strided-8",
    "strided-32",
    "no-boost",
    "c1-dense-3",
    "c1-dense-10",
    "order-cpt",
]


@dataclass
class AblationRow:
    variant: str
    speedup: float
    issued: float
    accuracy_proxy: float     # useful / issued at L1+L2


def run(runner: ExperimentRunner | None = None,
        apps: list[str] | None = None,
        variants: list[str] | None = None) -> list[AblationRow]:
    runner = runner or ExperimentRunner()
    apps = apps or DEFAULT_APPS
    variants = variants or VARIANTS
    runner.prefill(
        [(app, "none") for app in apps]
        + [(app, _variant(v)) for v in variants for app in apps]
    )
    rows = []
    for variant in variants:
        factory = _variant(variant)
        speedups = []
        issued = 0
        useful = 0
        for app in apps:
            baseline = runner.baseline(app)
            result = runner.run(app, factory)
            speedups.append(baseline.cycles / result.cycles)
            issued += result.prefetch.issued
            useful += (result.l1d.useful_prefetches
                       + result.l2.useful_prefetches)
        rows.append(
            AblationRow(
                variant=variant,
                speedup=geometric_mean(speedups),
                issued=issued / len(apps),
                accuracy_proxy=useful / issued if issued else 0.0,
            )
        )
    return rows


def render(rows: list[AblationRow]) -> str:
    return format_table(
        ["variant", "geomean speedup", "avg issued", "useful/issued"],
        [(r.variant, r.speedup, r.issued, r.accuracy_proxy) for r in rows],
    )


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
