"""Fig. 1 — effective accuracy vs scope for AMPM, BOP, and SMS.

The paper's motivating observation: moving from AMPM to BOP to SMS,
scope rises (67% -> 76% -> 87%) while accuracy falls (58% -> 49% -> 48%).
The reproduction checks the same *ordering* on the SPEC-like suite.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scatter import ScatterSeries, collect_scatter
from repro.workloads import workload_names

PREFETCHERS = ["ampm", "bop", "sms"]


def run(runner: ExperimentRunner | None = None,
        apps: list[str] | None = None) -> list[ScatterSeries]:
    apps = apps or workload_names("spec")
    return collect_scatter(PREFETCHERS, apps, runner, weight_by="mpki")


def render(series: list[ScatterSeries]) -> str:
    rows = []
    for s in series:
        for p in s.points:
            rows.append((s.prefetcher, p.app, p.scope, p.accuracy, p.weight))
        rows.append((s.prefetcher, "== average ==", s.average_scope,
                     s.average_accuracy, sum(p.weight for p in s.points)))
    return format_table(
        ["prefetcher", "app", "scope", "eff_accuracy", "weight(mpki)"], rows
    )


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
