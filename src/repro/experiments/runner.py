"""Shared experiment runner with in-process and on-disk result caching.

Most figures reuse the same (workload, prefetcher) simulations — e.g. the
no-prefetch baseline of every workload appears in every metric — so the
runner memoizes :class:`~repro.engine.system.SimulationResult` objects
keyed by workload, prefetcher spec, and configuration tag.

Two optional layers extend the in-process memo:

* ``cache_dir`` — a persistent read-through store
  (:mod:`repro.resultcache`): warm re-runs of ``report_all`` skip
  simulation entirely.  Keys include a digest of the simulator sources,
  so editing engine/prefetcher code invalidates stale entries.
* ``jobs`` — the default worker count for :meth:`prefill`, which fans
  independent matrix cells out across a **persistent** process pool
  (:mod:`repro.parallel`, reused across prefill calls) with results
  bit-identical to serial runs.  Workloads themselves resolve through
  the compiled-trace cache (:mod:`repro.workloads.tracecache`), so
  neither the parent nor any worker rebuilds a functional trace that
  the current builder code has generated before.
* ``journal_dir`` — a resumable-matrix journal
  (:class:`repro.faults.MatrixJournal`): every completed cell is
  recorded under the result-cache key scheme, so an interrupted matrix
  resumed with the same cache and journal performs **zero**
  re-simulations of completed cells (counted as ``resume_hits``).
  Failed cells land in the journal too, for post-mortems.

Fan-out is fault-isolated (docs/robustness.md): a cell that exhausts
its retries surfaces as a :class:`repro.faults.CellFailure`, is counted
under ``failed_cells``, journaled, and **skipped** — the rest of the
matrix completes.  A later :meth:`run` of that cell simulates serially
and raises the real exception in context.

With ``runs_dir`` set, every fresh (non-cached) simulation also writes a
provenance manifest to ``<runs_dir>/<run_id>/manifest.json`` (see
:mod:`repro.telemetry.manifest`).
"""

from __future__ import annotations

import hashlib
import time
from typing import Callable, Iterable

from repro.core.base import Prefetcher
from repro.engine.config import SystemConfig, EXPERIMENT_CONFIG
from repro.engine.system import SimulationResult, simulate
from repro.prefetcher_registry import make_prefetcher
from repro.resultcache import ResultCache, config_digest
from repro.workloads import get_workload

PrefetcherSpec = str | Callable[[], Prefetcher]
"""Either a registry name or a zero-argument factory."""


def resolve_spec(spec: PrefetcherSpec) -> tuple[str, Prefetcher | None]:
    """Stable cache key for a spec, plus the instance if keying built one.

    Resolution order: registry name as-is, an explicit ``cache_key``
    attribute, then the factory's ``__name__``.  Anonymous factories
    (lambdas, partials) fall back to a descriptor of what they *build* —
    class, display name, and storage budget — hashed into a short
    digest.  Only that last case constructs a prefetcher; the built
    instance is returned so callers never construct twice for one run
    (simulation ``reset()``s it anyway).
    """
    if isinstance(spec, str):
        return spec, None
    key = getattr(spec, "cache_key", None)
    if key is not None:
        return key, None
    name = getattr(spec, "__name__", "")
    if name and name != "<lambda>":
        return name, None
    built = spec()
    descriptor = (
        type(built).__module__,
        type(built).__qualname__,
        built.name,
        built.storage_bits,
    )
    digest = hashlib.sha1(repr(descriptor).encode()).hexdigest()[:10]
    return f"{built.name}@{digest}", built


def spec_key(spec: PrefetcherSpec) -> str:
    """Stable cache key for a prefetcher spec (see :func:`resolve_spec`)."""
    return resolve_spec(spec)[0]


class SpecFactory:
    """Picklable prefetcher factory: a module-level builder plus kwargs.

    Closure factories (``lambda: make_tpc(...)``) carry stable
    ``cache_key`` attributes but cannot cross a process boundary, which
    silently demotes their cells to the serial fallback of
    :mod:`repro.parallel`.  Wrapping the builder *function* (pickled by
    qualified name) and its keyword arguments instead keeps the whole
    experiment matrix eligible for fan-out.  Instances behave exactly
    like the closures they replace: callable, with the same cache key.
    """

    __slots__ = ("cache_key", "builder", "kwargs")

    def __init__(self, cache_key: str, builder: Callable[..., Prefetcher],
                 **kwargs) -> None:
        self.cache_key = cache_key
        self.builder = builder
        self.kwargs = kwargs

    def __call__(self) -> Prefetcher:
        return self.builder(**self.kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpecFactory({self.cache_key!r})"


def build_prefetcher(spec: PrefetcherSpec) -> Prefetcher:
    if isinstance(spec, str):
        return make_prefetcher(spec)
    return spec()


def simulate_spec(workload: str, spec: PrefetcherSpec, tag: str,
                  config: SystemConfig) -> SimulationResult:
    """One uncached simulation of a (workload, spec, tag) cell.

    This is the single simulation path shared by the serial runner and
    the parallel workers, which is what makes ``--jobs N`` results
    bit-identical to serial runs.
    """
    key, built = resolve_spec(spec)
    if built is None:
        built = build_prefetcher(spec)
    trace = get_workload(workload).trace()
    return simulate(trace, built, config, config_tag=tag, spec=key)


class ExperimentRunner:
    """Caches single-core simulation results.

    Parameters
    ----------
    runs_dir:
        Optional; turns on manifest serialization — each fresh simulation
        writes ``<runs_dir>/<run_id>/manifest.json``.
    cache_dir:
        Optional; persistent result cache directory (read-through, shared
        across processes and invocations).
    jobs:
        Default worker count for :meth:`prefill`; ``1`` keeps everything
        serial and ``0`` means one worker per CPU.
    journal_dir:
        Optional; resumable-matrix journal directory (pairs with
        ``cache_dir`` — the journal stores completion keys, the cache
        stores the payloads).
    retry:
        Optional :class:`repro.faults.RetryPolicy` for :meth:`prefill`
        fan-out (default: from the environment).
    obs:
        Optional :class:`repro.obs.FabricObs`; traces cache gets/puts,
        journal-resume hits, and fresh serial simulations as spans, and
        threads through :meth:`prefill` fan-out.  ``None`` (the
        default) executes the exact unobserved code path.
    """

    def __init__(self, config: SystemConfig | None = None,
                 runs_dir=None, cache_dir=None, jobs: int = 1,
                 journal_dir=None, retry=None, obs=None) -> None:
        self.config = config or EXPERIMENT_CONFIG
        self.runs_dir = runs_dir
        self.jobs = jobs
        self.retry = retry
        self.obs = obs
        self.disk = ResultCache(cache_dir) if cache_dir else None
        self._config_digest = config_digest(self.config)
        if journal_dir:
            from repro.faults import MatrixJournal

            self.journal = MatrixJournal(journal_dir, self._config_digest)
        else:
            self.journal = None
        self._cache: dict[tuple[str, str, str], SimulationResult] = {}
        self.counters = {"simulated": 0, "memory_hits": 0, "disk_hits": 0,
                         "resume_hits": 0, "failed_cells": 0}

    def _record(self, result: SimulationResult) -> None:
        if self.runs_dir is not None and result.manifest is not None:
            from repro.telemetry.manifest import write_manifest

            write_manifest(result.manifest, self.runs_dir)

    def _store(self, key: tuple[str, str, str],
               result: SimulationResult) -> None:
        """A freshly simulated result enters every cache layer."""
        self._cache[key] = result
        self.counters["simulated"] += 1
        self._record(result)
        if self.disk is not None:
            if self.obs is None:
                self.disk.put(key[0], key[1], key[2], self._config_digest,
                              result)
            else:
                with self.obs.span("cache_put", workload=key[0],
                                   spec=key[1], tag=key[2]):
                    self.disk.put(key[0], key[1], key[2],
                                  self._config_digest, result)
        if self.journal is not None:
            self.journal.record_ok(
                *key, kernel=getattr(result, "kernel", "generic"))

    def _disk_get(self, key: tuple[str, str, str]
                  ) -> SimulationResult | None:
        if self.disk is None:
            return None
        if self.obs is None:
            result = self.disk.get(key[0], key[1], key[2],
                                   self._config_digest)
        else:
            with self.obs.span("cache_get", workload=key[0], spec=key[1],
                               tag=key[2]) as extra:
                result = self.disk.get(key[0], key[1], key[2],
                                       self._config_digest)
                extra["hit"] = result is not None
        if result is not None:
            self._cache[key] = result
            self.counters["disk_hits"] += 1
            if self.journal is not None and self.journal.has(key):
                # A journaled cell served from the cache: the resume
                # contract (zero re-simulations) at work, made visible.
                from repro.faults import RESUME_HIT, log_fault
                from repro.obs import cell_span_id

                self.counters["resume_hits"] += 1
                log_fault(RESUME_HIT, workload=key[0], spec=key[1],
                          tag=key[2], span=cell_span_id(*key, 0))
                if self.obs is not None:
                    self.obs.record(
                        "journal_resume", t0=time.time(), dur=0.0,
                        sid=f"journal_resume:{key[0]}/{key[1]}"
                            + (f"#{key[2]}" if key[2] else ""),
                        workload=key[0], spec=key[1], tag=key[2],
                    )
                    self.obs.metrics.count("runner.resume_hits")
        return result

    def run(self, workload: str, prefetcher: PrefetcherSpec = "none",
            tag: str = "") -> SimulationResult:
        """Simulate (cached).  ``tag`` distinguishes config variants."""
        key_spec, built = resolve_spec(prefetcher)
        key = (workload, key_spec, tag)
        cached = self._cache.get(key)
        if cached is not None:
            self.counters["memory_hits"] += 1
            if self.obs is not None:
                self.obs.metrics.count("runner.memory_hits")
            return cached
        cached = self._disk_get(key)
        if cached is not None:
            return cached
        if built is None:
            built = build_prefetcher(prefetcher)
        trace = get_workload(workload).trace()
        if self.obs is None:
            result = simulate(trace, built, self.config,
                              config_tag=tag, spec=key_spec)
        else:
            from repro.obs import cell_span_id

            with self.obs.span("cell",
                               sid=cell_span_id(workload, key_spec, tag, 0),
                               workload=workload, spec=key_spec,
                               tag=tag) as extra:
                result = simulate(trace, built, self.config,
                                  config_tag=tag, spec=key_spec)
                extra["kernel"] = getattr(result, "kernel", "generic")
                extra["instructions"] = result.core.instructions
        self._store(key, result)
        return result

    def prefill(self, jobs: Iterable, n_jobs: int | None = None) -> int:
        """Warm the cache for a batch of independent matrix cells.

        ``jobs`` yields ``(workload, spec)`` or ``(workload, spec, tag)``
        tuples.  Cells already cached (memory or disk) are skipped; the
        remainder fan out across ``n_jobs`` workers of the shared
        persistent pool (default: the runner's ``jobs`` setting) and
        merge deterministically, so subsequent :meth:`run` calls are
        hits.  With one worker — or a single surviving cell — this
        stays in-process: :func:`repro.parallel.run_jobs` never pays
        pool overhead it cannot win back.

        Cells that exhaust their retries are **not** fatal here: each is
        journaled/counted as a failure and skipped, so one bad cell
        cannot abort the matrix.  Returns the number of fresh
        simulations that succeeded.
        """
        from repro.faults import CellFailure
        from repro.parallel import default_jobs, normalize_job, run_jobs

        n = self.jobs if n_jobs is None else n_jobs
        if n == 0:
            n = default_jobs()
        if n <= 1:
            return 0
        pending: dict[tuple[str, str, str], tuple] = {}
        for job in jobs:
            workload, spec, tag = normalize_job(job)
            key = (workload, spec_key(spec), tag)
            if key in self._cache or key in pending:
                continue
            if self._disk_get(key) is not None:
                continue
            pending[key] = (workload, spec, tag)
        if not pending:
            return 0
        results = run_jobs(list(pending.values()), self.config, n,
                           policy=self.retry, obs=self.obs)
        stored = 0
        for key, result in zip(pending, results):
            if isinstance(result, CellFailure):
                self.counters["failed_cells"] += 1
                if self.journal is not None:
                    self.journal.record_failure(result)
                continue
            self._store(key, result)
            stored += 1
        return stored

    def run_tracked(self, workload: str, prefetcher: PrefetcherSpec,
                    tracker, tag: str = "") -> SimulationResult:
        """Simulate with a credit tracker attached (never cached: the
        tracker is a side output).  ``tag`` carries the same config
        identity as :meth:`run`, so tracked runs are comparable with the
        cached results they sit next to."""
        key_spec, built = resolve_spec(prefetcher)
        if built is None:
            built = build_prefetcher(prefetcher)
        trace = get_workload(workload).trace()
        return simulate(trace, built, self.config, tracker=tracker,
                        config_tag=tag, spec=key_spec)

    def run_profiled(self, workload: str, prefetcher: PrefetcherSpec,
                     telemetry, tag: str = "") -> SimulationResult:
        """Simulate with a telemetry hub attached (never cached: the
        event stream and counter snapshot are per-run side outputs)."""
        key_spec, built = resolve_spec(prefetcher)
        if built is None:
            built = build_prefetcher(prefetcher)
        trace = get_workload(workload).trace()
        result = simulate(trace, built, self.config, telemetry=telemetry,
                          config_tag=tag, spec=key_spec)
        self._record(result)
        return result

    def baseline(self, workload: str) -> SimulationResult:
        return self.run(workload, "none")

    def cache_size(self) -> int:
        return len(self._cache)
