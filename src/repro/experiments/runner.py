"""Shared experiment runner with in-process result caching.

Most figures reuse the same (workload, prefetcher) simulations — e.g. the
no-prefetch baseline of every workload appears in every metric — so the
runner memoizes :class:`~repro.engine.system.SimulationResult` objects
keyed by workload, prefetcher spec, and configuration tag.
"""

from __future__ import annotations

from typing import Callable

from repro.core.base import Prefetcher
from repro.engine.config import SystemConfig, EXPERIMENT_CONFIG
from repro.engine.system import SimulationResult, simulate
from repro.prefetcher_registry import make_prefetcher
from repro.workloads import get_workload

PrefetcherSpec = str | Callable[[], Prefetcher]
"""Either a registry name or a zero-argument factory."""


def spec_key(spec: PrefetcherSpec) -> str:
    """Stable cache key for a prefetcher spec."""
    if isinstance(spec, str):
        return spec
    name = getattr(spec, "cache_key", None)
    if name is not None:
        return name
    return getattr(spec, "__name__", repr(spec))


def build_prefetcher(spec: PrefetcherSpec) -> Prefetcher:
    if isinstance(spec, str):
        return make_prefetcher(spec)
    return spec()


class ExperimentRunner:
    """Caches single-core simulation results."""

    def __init__(self, config: SystemConfig | None = None) -> None:
        self.config = config or EXPERIMENT_CONFIG
        self._cache: dict[tuple[str, str, str], SimulationResult] = {}

    def run(self, workload: str, prefetcher: PrefetcherSpec = "none",
            tag: str = "") -> SimulationResult:
        """Simulate (cached).  ``tag`` distinguishes config variants."""
        key = (workload, spec_key(prefetcher), tag)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        trace = get_workload(workload).trace()
        result = simulate(trace, build_prefetcher(prefetcher), self.config)
        self._cache[key] = result
        return result

    def run_tracked(self, workload: str, prefetcher: PrefetcherSpec,
                    tracker) -> SimulationResult:
        """Simulate with a credit tracker attached (never cached: the
        tracker is a side output)."""
        trace = get_workload(workload).trace()
        return simulate(trace, build_prefetcher(prefetcher), self.config,
                        tracker=tracker)

    def baseline(self, workload: str) -> SimulationResult:
        return self.run(workload, "none")

    def cache_size(self) -> int:
        return len(self._cache)
