"""Shared experiment runner with in-process result caching.

Most figures reuse the same (workload, prefetcher) simulations — e.g. the
no-prefetch baseline of every workload appears in every metric — so the
runner memoizes :class:`~repro.engine.system.SimulationResult` objects
keyed by workload, prefetcher spec, and configuration tag.

With ``runs_dir`` set, every fresh (non-cached) simulation also writes a
provenance manifest to ``<runs_dir>/<run_id>/manifest.json`` (see
:mod:`repro.telemetry.manifest`).
"""

from __future__ import annotations

import hashlib
from typing import Callable

from repro.core.base import Prefetcher
from repro.engine.config import SystemConfig, EXPERIMENT_CONFIG
from repro.engine.system import SimulationResult, simulate
from repro.prefetcher_registry import make_prefetcher
from repro.workloads import get_workload

PrefetcherSpec = str | Callable[[], Prefetcher]
"""Either a registry name or a zero-argument factory."""


def spec_key(spec: PrefetcherSpec) -> str:
    """Stable cache key for a prefetcher spec.

    Resolution order: registry name as-is, an explicit ``cache_key``
    attribute, then the factory's ``__name__``.  Anonymous factories
    (lambdas, partials) fall back to a descriptor of what they *build* —
    class, display name, and storage budget — hashed into a short
    digest.  The previous fallback was ``repr(spec)``, which embeds the
    object id: two textually identical lambdas never cache-hit, and
    manifest keys changed on every process run.
    """
    if isinstance(spec, str):
        return spec
    key = getattr(spec, "cache_key", None)
    if key is not None:
        return key
    name = getattr(spec, "__name__", "")
    if name and name != "<lambda>":
        return name
    built = spec()
    descriptor = (
        type(built).__module__,
        type(built).__qualname__,
        built.name,
        built.storage_bits,
    )
    digest = hashlib.sha1(repr(descriptor).encode()).hexdigest()[:10]
    return f"{built.name}@{digest}"


def build_prefetcher(spec: PrefetcherSpec) -> Prefetcher:
    if isinstance(spec, str):
        return make_prefetcher(spec)
    return spec()


class ExperimentRunner:
    """Caches single-core simulation results.

    ``runs_dir`` (optional) turns on manifest serialization: each fresh
    simulation writes ``<runs_dir>/<run_id>/manifest.json``.
    """

    def __init__(self, config: SystemConfig | None = None,
                 runs_dir=None) -> None:
        self.config = config or EXPERIMENT_CONFIG
        self.runs_dir = runs_dir
        self._cache: dict[tuple[str, str, str], SimulationResult] = {}

    def _record(self, result: SimulationResult) -> None:
        if self.runs_dir is not None and result.manifest is not None:
            from repro.telemetry.manifest import write_manifest

            write_manifest(result.manifest, self.runs_dir)

    def run(self, workload: str, prefetcher: PrefetcherSpec = "none",
            tag: str = "") -> SimulationResult:
        """Simulate (cached).  ``tag`` distinguishes config variants."""
        key = (workload, spec_key(prefetcher), tag)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        trace = get_workload(workload).trace()
        result = simulate(trace, build_prefetcher(prefetcher), self.config,
                          config_tag=tag, spec=key[1])
        self._cache[key] = result
        self._record(result)
        return result

    def run_tracked(self, workload: str, prefetcher: PrefetcherSpec,
                    tracker) -> SimulationResult:
        """Simulate with a credit tracker attached (never cached: the
        tracker is a side output)."""
        trace = get_workload(workload).trace()
        return simulate(trace, build_prefetcher(prefetcher), self.config,
                        tracker=tracker, spec=spec_key(prefetcher))

    def run_profiled(self, workload: str, prefetcher: PrefetcherSpec,
                     telemetry) -> SimulationResult:
        """Simulate with a telemetry hub attached (never cached: the
        event stream and counter snapshot are per-run side outputs)."""
        trace = get_workload(workload).trace()
        result = simulate(trace, build_prefetcher(prefetcher), self.config,
                          telemetry=telemetry, spec=spec_key(prefetcher))
        self._record(result)
        return result

    def baseline(self, workload: str) -> SimulationResult:
        return self.run(workload, "none")

    def cache_size(self) -> int:
        return len(self._cache)
