"""The paper's implicit energy claim, checked (Sec. I):

"the energy cost is almost always outweighed by the energy savings
resulting from successful prefetches and thus commonly ignored."

For every prefetcher, estimate per-app energy with the first-order model
(`repro.analysis.energy`) and report how often engaging the prefetcher
is a net energy win, and the suite-average saving.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.energy import estimate, net_benefit
from repro.analysis.report import format_table
from repro.experiments.runner import ExperimentRunner, build_prefetcher
from repro.prefetcher_registry import PAPER_MONOLITHIC
from repro.workloads import workload_names

PREFETCHERS = PAPER_MONOLITHIC + ["tpc"]


@dataclass
class EnergyRow:
    prefetcher: str
    wins: int                  # apps where the prefetcher saves energy
    apps: int
    average_saving_pct: float  # suite-average energy saving


def run(runner: ExperimentRunner | None = None,
        apps: list[str] | None = None,
        prefetchers: list[str] | None = None) -> list[EnergyRow]:
    runner = runner or ExperimentRunner()
    apps = apps or workload_names("spec")
    prefetchers = prefetchers or PREFETCHERS
    runner.prefill(
        [(app, "none") for app in apps]
        + [(app, name) for name in prefetchers for app in apps]
    )
    rows = []
    for name in prefetchers:
        storage_bits = build_prefetcher(name).storage_bits
        wins = 0
        savings = []
        for app in apps:
            baseline = runner.baseline(app)
            result = runner.run(app, name)
            saved = net_benefit(result, baseline, storage_bits)
            if saved > 0:
                wins += 1
            base_total = estimate(baseline).total_uj
            savings.append(saved / base_total if base_total else 0.0)
        rows.append(
            EnergyRow(
                prefetcher=name,
                wins=wins,
                apps=len(apps),
                average_saving_pct=100.0 * sum(savings) / len(savings),
            )
        )
    return rows


def render(rows: list[EnergyRow]) -> str:
    return format_table(
        ["prefetcher", "net-win apps", "avg energy saving %"],
        [(r.prefetcher, f"{r.wins}/{r.apps}", r.average_saving_pct)
         for r in rows],
    )


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
