"""Fig. 8 — per-application speedups of all prefetchers on the SPEC-like
suite, applications sorted by average gain, plus the geometric mean.

Paper result: TPC geomean 1.41 vs 1.21-1.33 for the monolithic designs;
TPC is best in 11/21 benchmarks and within 5% of the best elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import geometric_mean
from repro.analysis.report import format_table
from repro.experiments.runner import ExperimentRunner
from repro.prefetcher_registry import PAPER_MONOLITHIC
from repro.workloads import workload_names

PREFETCHERS = PAPER_MONOLITHIC + ["tpc"]


@dataclass
class SpeedupGrid:
    prefetchers: list[str]
    apps: list[str]                          # sorted by average gain
    speedups: dict[tuple[str, str], float]   # (prefetcher, app) -> speedup

    def geomean(self, prefetcher: str) -> float:
        return geometric_mean(
            self.speedups[(prefetcher, app)] for app in self.apps
        )

    def best_count(self, prefetcher: str) -> int:
        """Number of apps where ``prefetcher`` is the best performer."""
        count = 0
        for app in self.apps:
            best = max(self.prefetchers,
                       key=lambda p: self.speedups[(p, app)])
            if best == prefetcher:
                count += 1
        return count


def run(runner: ExperimentRunner | None = None,
        apps: list[str] | None = None,
        prefetchers: list[str] | None = None) -> SpeedupGrid:
    runner = runner or ExperimentRunner()
    apps = apps or workload_names("spec")
    prefetchers = prefetchers or PREFETCHERS
    runner.prefill(
        [(app, "none") for app in apps]
        + [(app, name) for app in apps for name in prefetchers]
    )
    speedups: dict[tuple[str, str], float] = {}
    for app in apps:
        baseline = runner.baseline(app)
        for name in prefetchers:
            result = runner.run(app, name)
            speedups[(name, app)] = baseline.cycles / result.cycles
    # Paper sorting: applications by increasing average gain.
    def average_gain(app: str) -> float:
        return sum(speedups[(p, app)] for p in prefetchers) / len(prefetchers)

    ordered = sorted(apps, key=average_gain)
    return SpeedupGrid(prefetchers=prefetchers, apps=ordered,
                       speedups=speedups)


def render(grid: SpeedupGrid) -> str:
    headers = ["app"] + grid.prefetchers
    rows = []
    for app in grid.apps:
        rows.append([app] + [grid.speedups[(p, app)] for p in grid.prefetchers])
    rows.append(["== geomean =="] + [grid.geomean(p) for p in grid.prefetchers])
    rows.append(["== best in =="] + [grid.best_count(p)
                                     for p in grid.prefetchers])
    return format_table(headers, rows)


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
