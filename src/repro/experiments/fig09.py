"""Fig. 9 — memory traffic normalized to the no-prefetch baseline.

Paper result: TPC's average overhead is 6%, the least of all prefetchers;
the next best (BOP) is 12%.  The figure reports the suite-wide geometric
mean with min/max "I-beams".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import geometric_mean, traffic_overhead
from repro.analysis.report import format_table
from repro.experiments.runner import ExperimentRunner
from repro.prefetcher_registry import PAPER_MONOLITHIC
from repro.workloads import workload_names

PREFETCHERS = PAPER_MONOLITHIC + ["tpc"]


@dataclass
class TrafficRow:
    prefetcher: str
    geomean: float
    low: float
    high: float


def run(runner: ExperimentRunner | None = None,
        apps: list[str] | None = None,
        prefetchers: list[str] | None = None) -> list[TrafficRow]:
    runner = runner or ExperimentRunner()
    apps = apps or workload_names("spec")
    prefetchers = prefetchers or PREFETCHERS
    runner.prefill(
        [(app, "none") for app in apps]
        + [(app, name) for name in prefetchers for app in apps]
    )
    rows = []
    for name in prefetchers:
        overheads = []
        for app in apps:
            baseline = runner.baseline(app)
            result = runner.run(app, name)
            overheads.append(traffic_overhead(result, baseline))
        rows.append(
            TrafficRow(name, geometric_mean(overheads), min(overheads),
                       max(overheads))
        )
    return rows


def render(rows: list[TrafficRow]) -> str:
    return format_table(
        ["prefetcher", "traffic (geomean)", "min", "max"],
        [(r.prefetcher, r.geomean, r.low, r.high) for r in rows],
    )


if __name__ == "__main__":  # pragma: no cover
    print(render(run()))
