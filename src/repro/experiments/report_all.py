"""Regenerate every reproduced artifact in one run.

``python -m repro.experiments.report_all [output.md]`` runs Tables I-II,
Figs. 1 and 8-16, the drop-policy experiment, and the ablations, sharing
one result cache, and writes a single markdown-ish report.  This is the
programmatic equivalent of ``pytest benchmarks/ --benchmark-only`` when
you want the tables without the benchmarking machinery.

``--jobs N`` fans the simulation matrix out across processes (results
are bit-identical to serial); ``--cache-dir DIR`` reuses simulations
across invocations, so a warm re-run performs zero simulations;
``--journal-dir DIR`` records completed cells so an interrupted run
resumes with zero re-simulations of settled cells.

Sections are fault-isolated: a section that raises is reported as
failed (with its traceback inlined in the report and a
``section_failed`` fault-log record) while every other section still
renders — pass ``--fail-fast`` to restore abort-on-first-error.  The
exit code is nonzero when any section failed.
"""

from __future__ import annotations

import argparse
import sys
import time
import traceback

from repro.experiments import (
    ablations,
    drop_policy,
    fig01,
    fig08,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    tables,
)
from repro.experiments.runner import ExperimentRunner
from repro.log import get_logger
from repro.workloads.tracecache import trace_counters

SECTIONS = [
    ("Table I — system configuration",
     lambda runner: tables.render_table1()),
    ("Table II — prefetcher storage cost",
     lambda runner: tables.render_table2()),
    ("Fig. 1 — accuracy vs scope (AMPM/BOP/SMS)",
     lambda runner: fig01.render(fig01.run(runner))),
    ("Fig. 8 — per-application speedups",
     lambda runner: fig08.render(fig08.run(runner))),
    ("Fig. 9 — normalized memory traffic",
     lambda runner: fig09.render(fig09.run(runner))),
    ("Fig. 10 — effective accuracy vs scope (all prefetchers)",
     lambda runner: fig10.render(fig10.run(runner))),
    ("Fig. 11 — speedups per suite (incl. 4-core mixes)",
     lambda runner: fig11.render(fig11.run(runner, mix_count=3))),
    ("Fig. 12 — accuracy/coverage vs scope at L1 and L2",
     lambda runner: fig12.render(fig12.run(runner))),
    ("Fig. 13 — per-category (LHF/MHF/HHF) accuracy and scope",
     lambda runner: fig13.render(fig13.run(runner))),
    ("Fig. 14 — existing prefetchers alone vs as TPC components",
     lambda runner: fig14.render(fig14.run(runner))),
    ("Fig. 15 — compositing vs shunting",
     lambda runner: fig15.render(fig15.run(runner))),
    ("Fig. 16 — prefetch destination",
     lambda runner: fig16.render(fig16.run(runner))),
    ("Sec. V-C1 — memory-controller drop policy",
     lambda runner: drop_policy.render(drop_policy.run(mix_count=3))),
    ("Ablations — TPC design choices",
     lambda runner: ablations.render(ablations.run(runner))),
]


def generate(runner: ExperimentRunner | None = None,
             progress=None, jobs: int = 1, cache_dir=None,
             journal_dir=None, fail_fast: bool = False,
             section_errors: list | None = None) -> str:
    """Run every section and return the combined report text.

    ``jobs`` / ``cache_dir`` / ``journal_dir`` configure the default
    runner (ignored when an explicit ``runner`` is passed).

    Each section is fault-isolated: an exception becomes a ``SECTION
    FAILED`` block carrying the traceback (and appends the title to
    ``section_errors`` when the caller passes a list) instead of
    aborting the remaining sections.  ``fail_fast=True`` restores the
    old propagate-immediately behavior.
    """
    if runner is None:
        runner = ExperimentRunner(jobs=jobs, cache_dir=cache_dir,
                                  journal_dir=journal_dir)
    parts = []
    for title, render in SECTIONS:
        started = time.time()
        try:
            body = render(runner)
        except Exception:
            if fail_fast:
                raise
            from repro.faults import SECTION_FAILED, log_fault

            log_fault(SECTION_FAILED, detail=title)
            if section_errors is not None:
                section_errors.append(title)
            body = "SECTION FAILED\n\n" + traceback.format_exc()
        elapsed = time.time() - started
        if progress is not None:
            progress(f"{title} ({elapsed:.0f}s)")
        parts.append(f"## {title}\n\n```\n{body}\n```\n")
    return "\n".join(parts)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.report_all", description=__doc__
    )
    parser.add_argument("output", nargs="?", default=None,
                        help="write the report here instead of stdout")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (0 = one per CPU)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent result-cache directory")
    parser.add_argument("--journal-dir", default=None,
                        help="resumable-matrix journal directory "
                             "(pairs with --cache-dir)")
    parser.add_argument("--fail-fast", action="store_true",
                        help="abort on the first failing section instead "
                             "of isolating it")
    args = parser.parse_args(argv)
    log = get_logger("report")
    from repro.obs import FabricObs, obs_enabled

    obs = FabricObs("report_all") if obs_enabled(args.jobs) else None
    runner = ExperimentRunner(jobs=args.jobs, cache_dir=args.cache_dir,
                              journal_dir=args.journal_dir, obs=obs)
    section_errors: list = []
    report = generate(runner, progress=log.info,
                      fail_fast=args.fail_fast,
                      section_errors=section_errors)
    counts = runner.counters
    log.info(
        f"simulations: {counts['simulated']} fresh, "
        f"{counts['memory_hits']} memoized, "
        f"{counts['disk_hits']} from disk cache, "
        f"{counts['resume_hits']} resumed from journal, "
        f"{counts['failed_cells']} failed cells",
    )
    # A warm run (trace cache populated) must show zero builds here.
    traces = trace_counters()
    log.info(
        f"traces: {traces['builds']} built, "
        f"{traces['disk_hits']} from trace cache, "
        f"{traces['memory_hits']} memoized",
    )
    if obs is not None:
        out = obs.write()
        log.info(f"fabric observability: {out}/spans.jsonl — inspect with "
                 f"`repro trace {out.name}`")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        log.info(f"wrote {args.output}")
    else:
        print(report)
    if section_errors:
        log.error(f"FAILED sections: {', '.join(section_errors)}")
        sys.exit(1)


if __name__ == "__main__":  # pragma: no cover
    main()
