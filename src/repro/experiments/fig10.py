"""Fig. 10 — effective accuracy vs scope for every prefetcher, one dot
per application with area proportional to prefetches issued.

Paper result: monolithic prefetchers average 45-69% effective accuracy
with worst-case applications at 7-23%; TPC averages 82% with a worst case
of 49% — higher accuracy over a narrower scope.
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.experiments.runner import ExperimentRunner
from repro.experiments.scatter import ScatterSeries, collect_scatter
from repro.prefetcher_registry import PAPER_MONOLITHIC
from repro.workloads import workload_names

PREFETCHERS = PAPER_MONOLITHIC + ["tpc"]


def run(runner: ExperimentRunner | None = None,
        apps: list[str] | None = None,
        prefetchers: list[str] | None = None) -> list[ScatterSeries]:
    apps = apps or workload_names("spec")
    return collect_scatter(prefetchers or PREFETCHERS, apps, runner,
                           weight_by="issued")


def render(series: list[ScatterSeries]) -> str:
    rows = []
    for s in series:
        accuracies = [p.accuracy for p in s.points if p.weight > 0]
        rows.append(
            (
                s.prefetcher,
                s.average_scope,
                s.average_accuracy,
                min(accuracies) if accuracies else 0.0,
                max(accuracies) if accuracies else 0.0,
            )
        )
    return format_table(
        ["prefetcher", "avg scope", "avg eff_acc", "worst app", "best app"],
        rows,
    )


def render_points(series: list[ScatterSeries]) -> str:
    """Full per-application dump (the actual scatter points)."""
    rows = [
        (s.prefetcher, p.app, p.scope, p.accuracy, p.weight)
        for s in series
        for p in s.points
    ]
    return format_table(
        ["prefetcher", "app", "scope", "eff_accuracy", "issued"], rows
    )


if __name__ == "__main__":  # pragma: no cover
    results = run()
    print(render(results))
    print()
    print(render_points(results))
