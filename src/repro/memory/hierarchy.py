"""Three-level cache hierarchy with prefetch support.

Wires L1D -> L2 -> L3 -> DRAM per Table I.  Responsibilities:

* demand access timing (latency accumulates level by level; fills carry a
  ``fill_time`` so later accesses can merge into in-flight misses),
* MSHR occupancy limits at L1 and L2 (full MSHRs stall demands and drop
  prefetches, which naturally throttles over-aggressive prefetchers),
* prefetch insertion at a chosen target level (L1 or L2), tagged with the
  issuing component for usefulness/pollution attribution,
* shadow-tag pollution detection at L1 and L2 (see
  :mod:`repro.memory.shadow`),
* dirty writeback chains down to DRAM (traffic accounting for Fig. 9),
* footprint recording: per-line demand-miss counts (the paper's ``FP`` with
  weights ``W_i``) and the set of attempted prefetch lines (``PFP``).

Instruction fetch is assumed to hit (perfect L1I): the workloads' code
footprints are tiny and the paper's prefetchers are data prefetchers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.isa.trace import LINE_SHIFT
from repro.memory.cache import Cache, CacheLine

if TYPE_CHECKING:  # avoid a circular import with repro.engine.config
    from repro.engine.config import SystemConfig
from repro.memory.dram import Dram
from repro.memory.shadow import ShadowTagStore
from repro.telemetry import events as ev

# LINE_SHIFT lives with the trace so the compile-time derived ``line``
# column and the hierarchy can never disagree; re-exported here for the
# existing importers.
LINE_BYTES = 1 << LINE_SHIFT


@dataclass(slots=True)
class AccessResult:
    """Outcome of one demand access."""

    ready_time: int
    hit_level: int          # 1, 2, 3, or 4 (DRAM)
    l1_hit: bool
    primary_miss: bool      # primary L1 miss (drives T2 activation)
    served_by_prefetch: bool
    prefetch_component: str | None = None


@dataclass(slots=True)
class PrefetchStats:
    """Hierarchy-wide prefetch accounting."""

    issued: int = 0
    issued_to_l1: int = 0
    issued_to_l2: int = 0
    filtered: int = 0        # target already had (or was fetching) the line
    dropped_mshr: int = 0
    dropped_dram: int = 0
    by_component: Counter = field(default_factory=Counter)


class _MshrFile:
    """Completion-time list bounded by the MSHR count.

    ``_min_pending`` caches the earliest completion so the per-access
    drain (dropping entries whose fill already finished) is a single
    comparison when nothing has expired — the common case — instead of a
    list rebuild.  Drain timing is unchanged: the list is pruned exactly
    when the eager implementation would have removed something."""

    __slots__ = ("capacity", "_pending", "_min_pending")

    _NO_PENDING = 1 << 62

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._pending: list[int] = []
        self._min_pending = self._NO_PENDING

    def _drain(self, now: int) -> None:
        if self._min_pending <= now:
            pending = [t for t in self._pending if t > now]
            self._pending = pending
            self._min_pending = min(pending, default=self._NO_PENDING)

    def acquire_demand(self, now: int) -> int:
        """Returns the cycle at which an MSHR is available (>= now)."""
        self._drain(now)
        if len(self._pending) < self.capacity:
            return now
        earliest = min(self._pending)
        self._drain(earliest)
        return earliest

    def try_acquire_prefetch(self, now: int) -> bool:
        self._drain(now)
        return len(self._pending) < self.capacity

    def register(self, completion: int) -> None:
        self._pending.append(completion)
        if completion < self._min_pending:
            self._min_pending = completion

    def occupancy(self, now: int) -> int:
        self._drain(now)
        return len(self._pending)


class Hierarchy:
    """L1D/L2/L3/DRAM for one core.

    ``l3`` and ``dram`` may be shared across cores (multicore mode); when
    omitted, private instances are created from ``config``.

    ``tracker``, when set, receives credit-accounting callbacks:
    ``on_prefetch_issued(line, component)``,
    ``on_useful(line, component, level)``, and
    ``on_pollution(level, victims)`` where ``victims`` is a list of
    ``(line_addr, component)`` for prefetched lines in the affected set.
    """

    __slots__ = (
        "config",
        "l1d",
        "l2",
        "l3",
        "dram",
        "shadow_l1",
        "shadow_l2",
        "prefetch_stats",
        "tracker",
        "telemetry",
        "miss_lines_l1",
        "miss_lines_l2",
        "attempted_prefetch_lines",
        "attempted_by_component",
        "pollution_misses_l1",
        "pollution_misses_l2",
        "collect_footprint",
        "_l1_mshrs",
        "_l2_mshrs",
    )

    def __init__(self, config: SystemConfig,
                 l3: Cache | None = None,
                 dram: Dram | None = None,
                 collect_footprint: bool = True) -> None:
        self.config = config
        self.l1d = Cache("L1D", config.l1d.size_bytes, config.l1d.ways,
                         config.l1d.line_bytes, config.l1d.latency)
        self.l2 = Cache("L2", config.l2.size_bytes, config.l2.ways,
                        config.l2.line_bytes, config.l2.latency)
        self.l3 = l3 if l3 is not None else Cache(
            "L3", config.l3.size_bytes, config.l3.ways,
            config.l3.line_bytes, config.l3.latency,
        )
        self.dram = dram if dram is not None else Dram(config.dram)
        self.shadow_l1 = ShadowTagStore(self.l1d.num_sets, self.l1d.ways)
        self.shadow_l2 = ShadowTagStore(self.l2.num_sets, self.l2.ways)
        self.prefetch_stats = PrefetchStats()
        self.tracker = None
        self.telemetry = None
        """Optional :class:`repro.telemetry.Telemetry` hub.  Every emit
        site below is guarded by ``is not None`` so a run without
        telemetry executes the exact pre-telemetry code path."""
        self.miss_lines_l1: Counter = Counter()
        self.miss_lines_l2: Counter = Counter()
        self.attempted_prefetch_lines: set[int] = set()
        self.attempted_by_component: dict[str, set[int]] = {}
        self.pollution_misses_l1 = 0
        self.pollution_misses_l2 = 0
        self.collect_footprint = collect_footprint
        """When False, the per-line miss Counters (``miss_lines_l1/l2``)
        are not maintained — a lean mode for throughput benchmarking.
        Scope/coverage analyses need the default True."""
        self._l1_mshrs = _MshrFile(config.l1d.mshrs)
        self._l2_mshrs = _MshrFile(config.l2.mshrs)

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------
    def demand_access(self, addr: int, now: int,
                      is_write: bool = False, pc: int = -1) -> AccessResult:
        """One demand load/store; returns when the data is ready.

        ``pc`` (when the caller knows it) only tags telemetry events; it
        never affects timing.
        """
        line = addr >> LINE_SHIFT
        l1 = self.l1d
        stats = l1.stats
        stats.demand_accesses += 1
        hit = l1.lookup(line, now, is_write=is_write)
        shadow_l1_hit = self.shadow_l1.access(line)
        telemetry = self.telemetry

        if hit is not None:
            stats.demand_hits += 1
            served = hit.first_use_of_prefetch
            ready = hit.ready_time
            if served:
                stats.useful_prefetches += 1
                if ready > now:
                    stats.late_prefetch_hits += 1
                if self.tracker is not None:
                    self.tracker.on_useful(line, hit.component, 1)
                if telemetry is not None:
                    telemetry.emit(ev.FIRST_USE, now, line=line,
                                   component=hit.component, level=1, pc=pc)
            elif ready > now and not hit.was_prefetched:
                stats.mshr_merges += 1
            if ready < now:
                ready = now
            return AccessResult(
                ready_time=ready + l1.hit_latency,
                hit_level=1,
                l1_hit=True,
                primary_miss=False,
                served_by_prefetch=served,
                prefetch_component=hit.component,
            )

        return self._demand_miss(line, now, is_write, shadow_l1_hit, pc)

    def _demand_miss(self, line: int, now: int, is_write: bool,
                     shadow_l1_hit: bool, pc: int = -1) -> AccessResult:
        """Miss leg of :meth:`demand_access`.

        The caller has already counted the access, missed the L1 lookup,
        and performed the shadow-tag access.  Split out so the
        specialized replay kernels (:mod:`repro.engine.kernel`) can
        inline the L1 hit path and fall back here only on a miss.
        """
        l1 = self.l1d
        stats = l1.stats
        telemetry = self.telemetry
        stats.demand_misses += 1
        if self.collect_footprint:
            self.miss_lines_l1[line] += 1
        if shadow_l1_hit:
            self.pollution_misses_l1 += 1
            if self.tracker is not None:
                self.tracker.on_pollution(
                    1, self._prefetch_victims(l1, line)
                )
            if telemetry is not None:
                telemetry.emit(ev.POLLUTION_HIT, now, line=line, level=1,
                               pc=pc)
        t = self._l1_mshrs.acquire_demand(now) + l1.hit_latency
        fill_time, hit_level, served, component = self._access_l2(
            line, t, shadow_l1_hit, is_write, pc
        )
        self._fill_l1(line, fill_time, is_write)
        self._l1_mshrs.register(fill_time)
        return AccessResult(
            ready_time=fill_time,
            hit_level=hit_level,
            l1_hit=False,
            primary_miss=True,
            served_by_prefetch=served,
            prefetch_component=component,
        )

    def _access_l2(self, line: int, now: int, shadow_l1_hit: bool,
                   is_write: bool, pc: int = -1
                   ) -> tuple[int, int, bool, str | None]:
        """L2 leg of a demand miss: returns (data ready, level, served-by-
        prefetch, component)."""
        l2 = self.l2
        stats = l2.stats
        stats.demand_accesses += 1
        hit = l2.lookup(line, now)
        shadow_l2_hit = True
        if not shadow_l1_hit:
            shadow_l2_hit = self.shadow_l2.access(line)
        telemetry = self.telemetry

        if hit is not None:
            stats.demand_hits += 1
            served = hit.first_use_of_prefetch
            ready = hit.ready_time
            if served:
                stats.useful_prefetches += 1
                if ready > now:
                    stats.late_prefetch_hits += 1
                if self.tracker is not None:
                    self.tracker.on_useful(line, hit.component, 2)
                if telemetry is not None:
                    telemetry.emit(ev.FIRST_USE, now, line=line,
                                   component=hit.component, level=2, pc=pc)
            if ready < now:
                ready = now
            return ready + l2.hit_latency, 2, served, hit.component

        stats.demand_misses += 1
        if self.collect_footprint:
            self.miss_lines_l2[line] += 1
        if not shadow_l1_hit and shadow_l2_hit:
            self.pollution_misses_l2 += 1
            if self.tracker is not None:
                self.tracker.on_pollution(
                    2, self._prefetch_victims(l2, line)
                )
            if telemetry is not None:
                telemetry.emit(ev.POLLUTION_HIT, now, line=line, level=2,
                               pc=pc)
        t = self._l2_mshrs.acquire_demand(now) + l2.hit_latency
        fill_time, hit_level = self._access_l3(line, t, is_prefetch=False,
                                               component=None, pc=pc)
        self._fill_l2(line, fill_time)
        self._l2_mshrs.register(fill_time)
        return fill_time, hit_level, False, None

    def _access_l3(self, line: int, now: int, is_prefetch: bool,
                   component: str | None, pc: int = -1) -> tuple[int, int]:
        """L3 leg: returns (data ready time, hit level).  For dropped
        prefetch reads, returns (-1, 4)."""
        l3 = self.l3
        if not is_prefetch:
            l3.stats.demand_accesses += 1
        hit = l3.lookup(line, now)
        if hit is not None:
            if not is_prefetch:
                l3.stats.demand_hits += 1
                if hit.first_use_of_prefetch:
                    l3.stats.useful_prefetches += 1
                    if self.telemetry is not None:
                        self.telemetry.emit(ev.FIRST_USE, now, line=line,
                                            component=hit.component,
                                            level=3, pc=pc)
            return max(now, hit.ready_time) + l3.hit_latency, 3
        if not is_prefetch:
            l3.stats.demand_misses += 1
        t = now + l3.hit_latency
        completion = self.dram.read(line, t, is_prefetch=is_prefetch,
                                    component=component)
        if completion is None:
            return -1, 4
        self._fill_l3(line, completion, prefetched=is_prefetch,
                      component=component)
        return completion, 4

    # ------------------------------------------------------------------
    # Fills and writebacks
    # ------------------------------------------------------------------
    def _fill_l1(self, line: int, fill_time: int, dirty: bool = False,
                 prefetched: bool = False,
                 component: str | None = None) -> None:
        evicted = self.l1d.fill(line, fill_time, prefetched=prefetched,
                                component=component, dirty=dirty)
        if evicted is not None:
            if self.telemetry is not None and evicted.prefetched \
                    and not evicted.used:
                self.telemetry.emit(ev.EVICTED_UNUSED, fill_time,
                                    line=evicted.line_addr,
                                    component=evicted.component, level=1)
            if evicted.dirty:
                self._writeback_to_l2(evicted, fill_time)

    def _fill_l2(self, line: int, fill_time: int, prefetched: bool = False,
                 component: str | None = None, dirty: bool = False) -> None:
        evicted = self.l2.fill(line, fill_time, prefetched=prefetched,
                               component=component, dirty=dirty)
        if evicted is not None:
            if self.telemetry is not None and evicted.prefetched \
                    and not evicted.used:
                self.telemetry.emit(ev.EVICTED_UNUSED, fill_time,
                                    line=evicted.line_addr,
                                    component=evicted.component, level=2)
            if evicted.dirty:
                self._writeback_to_l3(evicted, fill_time)

    def _fill_l3(self, line: int, fill_time: int, prefetched: bool = False,
                 component: str | None = None, dirty: bool = False) -> None:
        evicted = self.l3.fill(line, fill_time, prefetched=prefetched,
                               component=component, dirty=dirty)
        if evicted is not None:
            if self.telemetry is not None and evicted.prefetched \
                    and not evicted.used:
                self.telemetry.emit(ev.EVICTED_UNUSED, fill_time,
                                    line=evicted.line_addr,
                                    component=evicted.component, level=3)
            if evicted.dirty:
                self.dram.write(evicted.line_addr, fill_time)

    def _writeback_to_l2(self, evicted: CacheLine, now: int) -> None:
        self._fill_l2(evicted.line_addr, now, dirty=True)

    def _writeback_to_l3(self, evicted: CacheLine, now: int) -> None:
        self._fill_l3(evicted.line_addr, now, dirty=True)

    # ------------------------------------------------------------------
    # Prefetch path
    # ------------------------------------------------------------------
    def prefetch(self, line: int, now: int, target_level: int = 1,
                 component: str | None = None, pc: int = -1) -> bool:
        """Prefetch one line into ``target_level`` (1 or 2).

        Returns True if a prefetch was actually issued (not filtered or
        dropped).  Every call records the line in the attempted-prefetch
        footprint (the paper's ``PFP``) regardless of outcome.  ``pc`` is
        the triggering instruction, for telemetry tagging only.
        """
        if target_level not in (1, 2):
            raise ValueError(f"prefetch target must be 1 or 2, got {target_level}")
        self.attempted_prefetch_lines.add(line)
        if component is not None:
            per_component = self.attempted_by_component.get(component)
            if per_component is None:
                per_component = self.attempted_by_component[component] = set()
            per_component.add(line)
        stats = self.prefetch_stats
        telemetry = self.telemetry
        target = self.l1d if target_level == 1 else self.l2
        if target.probe(line):
            stats.filtered += 1
            if telemetry is not None:
                telemetry.emit(ev.FILTERED, now, line=line,
                               component=component, level=target_level,
                               pc=pc)
            return False
        mshrs = self._l1_mshrs if target_level == 1 else self._l2_mshrs
        if not mshrs.try_acquire_prefetch(now):
            stats.dropped_mshr += 1
            if telemetry is not None:
                telemetry.emit(ev.DROPPED_MSHR, now, line=line,
                               component=component, level=target_level,
                               pc=pc)
            return False

        # Locate the data below the target level.
        if target_level == 1 and self.l2.probe(line):
            hit = self.l2.lookup(line, now, touch=True)
            fill_time = max(now, hit.ready_time) + self.l2.hit_latency
        else:
            fill_time, _ = self._access_l3(
                line, now, is_prefetch=True, component=component
            )
            if fill_time < 0:
                stats.dropped_dram += 1
                if telemetry is not None:
                    telemetry.emit(ev.DROPPED_DRAM, now, line=line,
                                   component=component, level=target_level,
                                   pc=pc)
                return False
            self._fill_l2(line, fill_time, prefetched=True,
                          component=component)

        if target_level == 1:
            self._fill_l1(line, fill_time, prefetched=True,
                          component=component)
            stats.issued_to_l1 += 1
        else:
            stats.issued_to_l2 += 1
        stats.issued += 1
        stats.by_component[component or "?"] += 1
        mshrs.register(fill_time)
        if self.tracker is not None:
            self.tracker.on_prefetch_issued(line, component)
        if telemetry is not None:
            telemetry.emit(ev.ISSUED, now, line=line, component=component,
                           level=target_level, pc=pc,
                           dur=max(fill_time - now, 0))
            telemetry.emit(ev.FILLED, fill_time, line=line,
                           component=component, level=target_level, pc=pc)
        return True

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _prefetch_victims(self, cache: Cache, line: int
                          ) -> list[tuple[int, str | None]]:
        set_index = cache.set_index(line)
        return [
            (l.line_addr, l.component)
            for l in cache.prefetched_lines_in_set(set_index)
        ]

    def mshr_occupancy(self, level: int, now: int) -> int:
        """In-flight misses at L1 (``level=1``) or L2 (``level=2``) at
        cycle ``now`` (telemetry sampling / tests)."""
        mshrs = self._l1_mshrs if level == 1 else self._l2_mshrs
        return mshrs.occupancy(now)

    @property
    def dram_traffic(self) -> int:
        """Total lines moved over the memory channels (Fig. 9 metric)."""
        return self.dram.stats.total_traffic
