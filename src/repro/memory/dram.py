"""DDR3-style DRAM model with banks, row buffers, and a bounded queue.

Timing parameters follow Table I of the paper (DDR3-1600, 2 channels,
2 ranks/channel, 8 banks/rank, tRCD = tRP = 13.75 ns, tRAS = 35 ns) with
the core clock at 3 GHz (1 ns = 3 cycles).

The model is analytical rather than event-driven: each bank keeps its open
row and the cycle at which it can accept the next request; each channel
keeps a bounded in-flight queue.  This captures what the paper's
experiments need — row-buffer locality, bank-level parallelism, queueing
delay under prefetch pressure, and the memory-controller prefetch-drop
policy of Sec. V-C1.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.telemetry import events as ev


class DropPolicy(enum.Enum):
    """What the controller does when the queue is full and a prefetch
    arrives (Sec. V-C1)."""

    RANDOM = "random"
    """Drop a uniformly random prefetch among queued + incoming."""

    LOW_PRIORITY_FIRST = "low_priority_first"
    """Prefer dropping low-confidence prefetches (C1's in the paper)."""


LOW_PRIORITY_COMPONENTS = frozenset({"C1"})
"""Prefetch component tags the controller treats as low probability."""


@dataclass(slots=True)
class DramStats:
    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_empty: int = 0
    row_conflicts: int = 0
    dropped_prefetches: int = 0
    demand_queue_stalls: int = 0

    @property
    def total_traffic(self) -> int:
        """Lines transferred over the memory channels."""
        return self.reads + self.writes


@dataclass(slots=True)
class _QueueEntry:
    completion: int
    is_prefetch: bool
    component: str | None


@dataclass
class DramConfig:
    """Timing/geometry knobs, defaults from Table I at 3 GHz."""

    channels: int = 2
    ranks_per_channel: int = 2
    banks_per_rank: int = 8
    lines_per_row: int = 32          # 2 KB row of 64 B lines
    t_rcd: int = 41                  # 13.75 ns
    t_rp: int = 41                   # 13.75 ns
    t_cas: int = 41
    burst: int = 15                  # 64 B @ 12.8 GB/s per channel = 5 ns
    queue_capacity: int = 32         # per channel
    drop_policy: DropPolicy = DropPolicy.RANDOM
    seed: int = 0x5EED


class Dram:
    """The memory controller + DRAM devices for one system."""

    __slots__ = (
        "config",
        "stats",
        "telemetry",
        "_num_banks",
        "_banks_per_channel",
        "_bank_ready",
        "_bank_row",
        "_bus_free",
        "_queues",
        "_queue_min",
        "_rng",
    )

    _NO_PENDING = 1 << 62

    def __init__(self, config: DramConfig | None = None) -> None:
        self.config = config or DramConfig()
        cfg = self.config
        self.stats = DramStats()
        self._num_banks = cfg.channels * cfg.ranks_per_channel * cfg.banks_per_rank
        self._banks_per_channel = cfg.ranks_per_channel * cfg.banks_per_rank
        self._bank_ready = [0] * self._num_banks
        self._bank_row: list[int | None] = [None] * self._num_banks
        self._bus_free = [0] * cfg.channels
        self._queues: list[list[_QueueEntry]] = [[] for _ in range(cfg.channels)]
        self._queue_min = [self._NO_PENDING] * cfg.channels
        self._rng = random.Random(cfg.seed)
        self.telemetry = None
        """Optional telemetry hub; emits controller-internal lifecycle
        events (queue stalls, queued-victim drops) that the hierarchy
        cannot observe.  ``None`` keeps the seed code path."""

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def _map(self, line_addr: int) -> tuple[int, int, int]:
        """line address -> (channel, global bank index, row)."""
        cfg = self.config
        channel = line_addr % cfg.channels
        rest = line_addr // cfg.channels
        bank_in_channel = rest % self._banks_per_channel
        row = rest // (self._banks_per_channel * cfg.lines_per_row)
        bank = channel * self._banks_per_channel + bank_in_channel
        return channel, bank, row

    # ------------------------------------------------------------------
    # Queue management
    # ------------------------------------------------------------------
    def _drain(self, channel: int, now: int) -> None:
        """Drop queue entries whose fill already finished.

        Same lazy scheme as ``_MshrFile``: the earliest completion per
        channel is cached, so the common no-expiry case is a single
        comparison instead of a list rebuild.  A stale (too small)
        cached minimum only causes a redundant rebuild, never a missed
        one — pruning timing is unchanged."""
        if self._queue_min[channel] <= now:
            queue = self._queues[channel]
            queue[:] = [entry for entry in queue if entry.completion > now]
            self._queue_min[channel] = min(
                (entry.completion for entry in queue),
                default=self._NO_PENDING,
            )

    def _admit(self, channel: int, now: int, is_prefetch: bool,
               component: str | None) -> tuple[int, bool]:
        """Apply queue capacity.  Returns (earliest start cycle, admitted).

        Demands never get rejected; they stall until a slot frees up.
        Prefetches may be dropped according to the drop policy.
        """
        self._drain(channel, now)
        queue = self._queues[channel]
        capacity = self.config.queue_capacity
        policy = self.config.drop_policy
        if len(queue) < capacity:
            return now, True

        if not is_prefetch:
            # Stall the demand until the earliest queued request completes.
            earliest = min(entry.completion for entry in queue)
            self.stats.demand_queue_stalls += 1
            if self.telemetry is not None:
                self.telemetry.emit(ev.DRAM_QUEUE_STALL, now,
                                    dur=earliest - now)
            self._drain(channel, earliest)
            return earliest, True

        # Queue full, incoming prefetch: pick a victim to drop.
        queued_prefetches = [e for e in queue if e.is_prefetch]
        if policy is DropPolicy.LOW_PRIORITY_FIRST:
            low = [
                e for e in queued_prefetches
                if e.component in LOW_PRIORITY_COMPONENTS
            ]
            if component in LOW_PRIORITY_COMPONENTS:
                # Incoming is itself low priority: drop it.
                self.stats.dropped_prefetches += 1
                return now, False
            if low:
                victim = low[0]
                queue.remove(victim)
                self.stats.dropped_prefetches += 1
                if self.telemetry is not None:
                    self.telemetry.emit(ev.DRAM_DROP_VICTIM, now,
                                        component=victim.component)
                return now, True
            self.stats.dropped_prefetches += 1
            return now, False

        # RANDOM: the controller sheds prefetch load indiscriminately.
        # In this analytical model only the *incoming* request can truly
        # be dropped (a queued request's bank timing is already
        # committed), so the random policy drops every prefetch that
        # arrives at a full queue — the shed composition matches the
        # arrival mix, which is what "drops prefetches randomly" means at
        # the aggregate level.
        self.stats.dropped_prefetches += 1
        return now, False

    # ------------------------------------------------------------------
    # Requests
    # ------------------------------------------------------------------
    def read(self, line_addr: int, now: int, is_prefetch: bool = False,
             component: str | None = None) -> int | None:
        """Read one line.  Returns the completion cycle, or ``None`` if the
        request was a prefetch that the controller dropped."""
        channel, bank, row = self._map(line_addr)
        start, admitted = self._admit(channel, now, is_prefetch, component)
        if not admitted:
            return None

        cfg = self.config
        start = max(start, self._bank_ready[bank])
        open_row = self._bank_row[bank]
        if open_row == row:
            access = cfg.t_cas
            self.stats.row_hits += 1
        elif open_row is None:
            access = cfg.t_rcd + cfg.t_cas
            self.stats.row_empty += 1
        else:
            access = cfg.t_rp + cfg.t_rcd + cfg.t_cas
            self.stats.row_conflicts += 1

        data_start = max(start + access, self._bus_free[channel])
        completion = data_start + cfg.burst
        self._bank_row[bank] = row
        self._bank_ready[bank] = data_start
        self._bus_free[channel] = completion
        self._queues[channel].append(
            _QueueEntry(completion, is_prefetch, component)
        )
        if completion < self._queue_min[channel]:
            self._queue_min[channel] = completion
        self.stats.reads += 1
        return completion

    def write(self, line_addr: int, now: int) -> None:
        """Writeback of one line; fire-and-forget for the caller."""
        channel, bank, row = self._map(line_addr)
        # Writebacks are not dropped; they use spare queue slots lazily and
        # are not modeled as stalling the core (write buffers absorb them).
        cfg = self.config
        start = max(now, self._bank_ready[bank])
        open_row = self._bank_row[bank]
        if open_row == row:
            access = cfg.t_cas
            self.stats.row_hits += 1
        elif open_row is None:
            access = cfg.t_rcd
            self.stats.row_empty += 1
        else:
            access = cfg.t_rp + cfg.t_rcd
            self.stats.row_conflicts += 1
        data_start = max(start + access, self._bus_free[channel])
        completion = data_start + cfg.burst
        self._bank_row[bank] = row
        self._bank_ready[bank] = data_start
        self._bus_free[channel] = completion
        self.stats.writes += 1

    def queue_occupancy(self, channel: int, now: int) -> int:
        """Pending requests on ``channel`` at cycle ``now`` (for tests)."""
        self._drain(channel, now)
        return len(self._queues[channel])

    def queue_depth(self, now: int) -> int:
        """Pending requests across all channels (telemetry sampling)."""
        return sum(
            self.queue_occupancy(channel, now)
            for channel in range(self.config.channels)
        )
