"""Alternative-reality shadow tag store (Sec. V-C1 of the paper).

To attribute pollution, the paper keeps "an additional set of cache tags,
which track the alternative reality where no prefetch is issued.  When an
access misses in the cache but finds its tag in the alternative-reality
cache tags, we have a prefetching-induced miss."

:class:`ShadowTagStore` is that structure: a tag-only cache with the same
geometry as the real cache, updated **only by demand accesses**, so its
content is what the real cache would hold without prefetching.
"""

from __future__ import annotations


class ShadowTagStore:
    """Tag-only LRU cache mirroring a :class:`~repro.memory.cache.Cache`."""

    __slots__ = ("num_sets", "ways", "_set_mask", "_sets")

    def __init__(self, num_sets: int, ways: int) -> None:
        if num_sets <= 0 or num_sets & (num_sets - 1):
            raise ValueError("num_sets must be a positive power of two")
        self.num_sets = num_sets
        self.ways = ways
        self._set_mask = num_sets - 1
        # Per-set insertion-ordered dict: line_addr -> None; order == LRU.
        self._sets: list[dict[int, None]] = [dict() for _ in range(num_sets)]

    def access(self, line_addr: int) -> bool:
        """Demand access: returns hit/miss and updates LRU + contents."""
        target_set = self._sets[line_addr & self._set_mask]
        hit = line_addr in target_set
        if hit:
            # Move to MRU position.
            del target_set[line_addr]
        elif len(target_set) >= self.ways:
            # Evict LRU (first inserted).
            target_set.pop(next(iter(target_set)))
        target_set[line_addr] = None
        return hit

    def probe(self, line_addr: int) -> bool:
        """Tag check with no state change."""
        return line_addr in self._sets[line_addr & self._set_mask]

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)
