"""Memory-system substrate: caches, shadow tags, DRAM, and the hierarchy.

The paper evaluates prefetchers on a gem5-modeled three-level hierarchy
(Table I).  This package reimplements the parts that matter for prefetch
studies:

* set-associative caches with LRU, dirty bits, and per-line prefetch
  metadata (which component brought the line in, whether it was used),
* in-flight fill timing — a line allocated by a miss or prefetch carries a
  ``fill_time``; demand accesses that arrive earlier wait, which models both
  MSHR secondary-miss merging and *late* prefetches,
* alternative-reality shadow tags for pollution accounting (Sec. V-C1),
* a DDR3-style DRAM model with per-bank row-buffer state and a bounded
  request queue with pluggable prefetch-drop policies (Sec. V-C1's
  memory-controller experiment).
"""

from repro.memory.cache import Cache, CacheStats, EvictionInfo
from repro.memory.shadow import ShadowTagStore
from repro.memory.dram import Dram, DramStats, DropPolicy
from repro.memory.hierarchy import AccessResult, Hierarchy

__all__ = [
    "AccessResult",
    "Cache",
    "CacheStats",
    "Dram",
    "DramStats",
    "DropPolicy",
    "EvictionInfo",
    "Hierarchy",
    "ShadowTagStore",
]
