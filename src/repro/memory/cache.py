"""Set-associative cache model with prefetch metadata and fill timing.

The cache operates on *line addresses* (byte address >> line shift); the
hierarchy does the shifting once.  Each resident line carries:

``fill_time``
    Cycle at which the data actually arrives.  A demand access to a line
    whose fill is still in flight waits for it — this models MSHR
    secondary-miss merging (no duplicate traffic) and late prefetches
    (partial latency savings) without a full event queue.
``prefetched`` / ``component``
    Whether the line was brought in by a prefetch and by which component —
    needed for useful-prefetch accounting, Fig. 13/14 credit assignment,
    and the coordinator's "existing prefetcher as component" round-robin.
"""

from __future__ import annotations

from dataclasses import dataclass


class CacheLine:
    """Metadata for one resident line (the model stores no data bytes)."""

    __slots__ = (
        "line_addr",
        "fill_time",
        "last_use",
        "dirty",
        "prefetched",
        "used",
        "component",
    )

    def __init__(self, line_addr: int, fill_time: int, last_use: int,
                 prefetched: bool = False, component: str | None = None) -> None:
        self.line_addr = line_addr
        self.fill_time = fill_time
        self.last_use = last_use
        self.dirty = False
        self.prefetched = prefetched
        self.used = False
        self.component = component


@dataclass(slots=True)
class CacheStats:
    """Per-cache counters.

    ``demand_misses`` counts *primary* misses only: an access that merges
    into an in-flight fill counts as a hit here but is tracked separately
    as ``mshr_merges`` (matching the paper's "we ignore secondary misses").
    """

    demand_accesses: int = 0
    demand_hits: int = 0
    demand_misses: int = 0
    mshr_merges: int = 0
    late_prefetch_hits: int = 0
    useful_prefetches: int = 0
    prefetch_fills: int = 0
    prefetch_evicted_unused: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def miss_rate(self) -> float:
        if not self.demand_accesses:
            return 0.0
        return self.demand_misses / self.demand_accesses


@dataclass(slots=True)
class EvictionInfo:
    """The shape of an eviction record.

    :meth:`Cache.fill` now returns the victim :class:`CacheLine` itself
    (a field superset of this); the class remains as the documented
    attribute contract and for callers that build eviction records by
    hand.
    """

    line_addr: int
    dirty: bool
    prefetched: bool
    used: bool
    component: str | None = None


@dataclass(slots=True)
class HitInfo:
    """Returned by :meth:`Cache.lookup` on a hit."""

    ready_time: int
    was_prefetched: bool
    first_use_of_prefetch: bool
    component: str | None = None


class Cache:
    """A single cache level.

    Parameters
    ----------
    size_bytes / ways / line_bytes:
        Geometry; ``sets`` is derived and must be a power of two.
    hit_latency:
        Cycles from access to data on a hit (input clock already applied).
    name:
        For stats reporting ("L1D", "L2", "L3").
    """

    __slots__ = (
        "name",
        "ways",
        "num_sets",
        "line_bytes",
        "hit_latency",
        "stats",
        "_set_mask",
        "_sets",
        "_use_counter",
    )

    def __init__(self, name: str, size_bytes: int, ways: int,
                 line_bytes: int = 64, hit_latency: int = 1) -> None:
        sets = size_bytes // (ways * line_bytes)
        if sets <= 0 or sets & (sets - 1):
            raise ValueError(
                f"{name}: set count {sets} must be a positive power of two"
            )
        self.name = name
        self.ways = ways
        self.num_sets = sets
        self.line_bytes = line_bytes
        self.hit_latency = hit_latency
        self.stats = CacheStats()
        self._set_mask = sets - 1
        # One dict per set: line_addr -> CacheLine.  Dicts keep lookup O(1);
        # LRU eviction scans the (few) ways.
        self._sets: list[dict[int, CacheLine]] = [dict() for _ in range(sets)]
        self._use_counter = 0

    # ------------------------------------------------------------------
    # Lookup / fill
    # ------------------------------------------------------------------
    def set_index(self, line_addr: int) -> int:
        return line_addr & self._set_mask

    def lookup(self, line_addr: int, now: int,
               is_write: bool = False, touch: bool = True) -> HitInfo | None:
        """Demand lookup.  Returns hit info or ``None`` on a miss.

        On a hit the LRU state is updated and prefetch-usefulness is
        recorded on first use.  ``ready_time`` accounts for in-flight fills.
        """
        line = self._sets[line_addr & self._set_mask].get(line_addr)
        if line is None:
            return None
        use_counter = self._use_counter + 1
        self._use_counter = use_counter
        if touch:
            line.last_use = use_counter
        if is_write:
            line.dirty = True
        first_use = line.prefetched and not line.used
        if first_use:
            line.used = True
        ready = line.fill_time
        if ready < now:
            ready = now
        return HitInfo(
            ready_time=ready,
            was_prefetched=line.prefetched,
            first_use_of_prefetch=first_use,
            component=line.component,
        )

    def probe(self, line_addr: int) -> bool:
        """Tag check with no side effects (used by prefetch filtering)."""
        return line_addr in self._sets[line_addr & self._set_mask]

    def fill(self, line_addr: int, fill_time: int,
             prefetched: bool = False, component: str | None = None,
             dirty: bool = False) -> CacheLine | None:
        """Allocate ``line_addr``; returns the victim line if one leaves.

        If the line is already resident the existing entry is kept (its
        fill_time is only lowered, never raised) and no eviction happens.
        The victim :class:`CacheLine` is handed back as-is (it is already
        unlinked from the set, and it carries every field of
        :class:`EvictionInfo`) — allocating a snapshot object per
        eviction was a measurable cost on the fill path.
        """
        target_set = self._sets[line_addr & self._set_mask]
        existing = target_set.get(line_addr)
        use_counter = self._use_counter + 1
        self._use_counter = use_counter
        if existing is not None:
            if fill_time < existing.fill_time:
                existing.fill_time = fill_time
            if dirty:
                existing.dirty = True
            return None

        evicted = None
        if len(target_set) >= self.ways:
            # LRU victim; explicit scan (first minimum, like min(key=))
            # avoids a lambda call per resident way on the fill path.
            victim = None
            for candidate in target_set.values():
                if victim is None or candidate.last_use < victim.last_use:
                    victim = candidate
            del target_set[victim.line_addr]
            stats = self.stats
            stats.evictions += 1
            if victim.dirty:
                stats.writebacks += 1
            if victim.prefetched and not victim.used:
                stats.prefetch_evicted_unused += 1
            evicted = victim

        line = CacheLine(line_addr, fill_time, use_counter,
                         prefetched=prefetched, component=component)
        line.dirty = dirty
        target_set[line_addr] = line
        if prefetched:
            self.stats.prefetch_fills += 1
        return evicted

    def invalidate(self, line_addr: int) -> bool:
        """Drop a line if present (no writeback modeling on invalidate)."""
        target_set = self._sets[line_addr & self._set_mask]
        return target_set.pop(line_addr, None) is not None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def resident_lines(self) -> list[int]:
        """All currently resident line addresses (tests, debugging)."""
        lines: list[int] = []
        for target_set in self._sets:
            lines.extend(target_set.keys())
        return lines

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def prefetched_lines_in_set(self, set_index: int) -> list[CacheLine]:
        """Prefetched lines resident in a set (pollution credit sharing)."""
        return [
            line for line in self._sets[set_index].values() if line.prefetched
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cache({self.name}, {self.num_sets} sets x {self.ways} ways, "
            f"occupancy={self.occupancy()})"
        )
