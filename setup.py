"""Setuptools shim.

The execution environment is offline and has no ``wheel`` package, so PEP
517 editable installs cannot build; this shim enables the legacy
``setup.py develop`` path used by ``pip install -e . --no-build-isolation``.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
