"""Multicore scenario: 4-core mixes, weighted speedup, and the
memory-controller drop policy (paper Sec. V-C1).

Runs a 4-workload mix on the shared-L3 multicore model, compares
prefetchers by per-application speedup in the shared environment, and
then reproduces the drop-policy experiment: when the memory-controller
queue fills, preferentially dropping C1's low-confidence prefetches beats
dropping at random.
"""

from dataclasses import replace

from repro import make_prefetcher
from repro.analysis.report import format_table
from repro.engine.config import EXPERIMENT_CONFIG
from repro.engine.multicore import simulate_multicore
from repro.memory.dram import DropPolicy
from repro.workloads import get_workload

MIX = ["spec.libquantum", "spec.mcf", "spec.h264ref", "crono.bfs_google"]


def shared_speedups(traces, prefetcher_name, config):
    without = simulate_multicore(
        traces, [make_prefetcher("none") for _ in traces], config
    )
    with_pf = simulate_multicore(
        traces, [make_prefetcher(prefetcher_name) for _ in traces], config
    )
    return [
        pf.ipc / base.ipc
        for pf, base in zip(with_pf.per_core, without.per_core)
    ], with_pf


def main() -> None:
    traces = [get_workload(name).trace() for name in MIX]
    config = EXPERIMENT_CONFIG

    rows = []
    for name in ["bop", "sms", "tpc"]:
        speedups, _ = shared_speedups(traces, name, config)
        rows.append([name] + [f"{s:.3f}" for s in speedups]
                    + [f"{sum(speedups) / len(speedups):.3f}"])
    print("Per-application speedup in the shared 4-core environment:")
    print(format_table(["prefetcher"] + MIX + ["avg"], rows))

    print()
    print("Drop-policy experiment (queue capacity 8):")
    rows = []
    for policy in (DropPolicy.RANDOM, DropPolicy.LOW_PRIORITY_FIRST):
        small_queue = replace(
            config,
            dram=replace(config.dram, drop_policy=policy, queue_capacity=8),
        )
        speedups, result = shared_speedups(traces, "tpc", small_queue)
        rows.append(
            (
                policy.value,
                sum(speedups) / len(speedups),
                result.per_core[0].dram.dropped_prefetches,
            )
        )
    print(format_table(["drop policy", "avg speedup", "dropped"], rows))


if __name__ == "__main__":
    main()
