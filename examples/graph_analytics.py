"""Graph analytics scenario (the CRONO-like suite).

Graph workloads are the paper's motivating hard case: CSR traversals mix
a strided offsets walk, bursty neighbor-list reads, and irregular gathers
of per-node state.  This example runs every CRONO-like workload under the
monolithic prefetchers and TPC and shows where the division of labor
pays off — including the per-component breakdown of TPC's prefetches.
"""

from repro import make_prefetcher, simulate
from repro.analysis.report import format_table
from repro.workloads import get_suite


def main() -> None:
    prefetchers = ["none", "spp", "bop", "sms", "tpc"]
    rows = []
    breakdown_rows = []
    for workload in sorted(get_suite("crono"), key=lambda w: w.name):
        trace = workload.trace()
        baseline = simulate(trace)
        for name in prefetchers:
            result = simulate(trace, make_prefetcher(name))
            rows.append(
                (
                    workload.name,
                    name,
                    result.speedup_over(baseline),
                    result.l1_mpki,
                    result.prefetch.issued,
                )
            )
            if name == "tpc":
                components = dict(result.prefetch.by_component)
                breakdown_rows.append(
                    (
                        workload.name,
                        components.get("T2", 0),
                        components.get("P1", 0),
                        components.get("C1", 0),
                    )
                )
    print(format_table(
        ["workload", "prefetcher", "speedup", "L1 MPKI", "issued"], rows
    ))
    print()
    print("TPC per-component prefetch breakdown:")
    print(format_table(["workload", "T2", "P1", "C1"], breakdown_rows))


if __name__ == "__main__":
    main()
