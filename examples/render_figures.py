"""Render the paper's figures as SVG files (no plotting libraries
needed).

Run with::

    python examples/render_figures.py [output_dir]

Uses the dependency-free renderer in ``repro.analysis.svgplot``; the
full-suite version is ``python -m repro.experiments.figures_svg``.
This example renders a reduced (fast) variant: Fig. 1 and Fig. 9 over a
four-application subset.
"""

import os
import sys

from repro.analysis import svgplot
from repro.experiments import fig01, fig09
from repro.experiments.runner import ExperimentRunner

APPS = ["spec.libquantum", "spec.mcf", "spec.h264ref", "spec.omnetpp"]


def main() -> None:
    output_dir = sys.argv[1] if len(sys.argv) > 1 else "figures"
    os.makedirs(output_dir, exist_ok=True)
    runner = ExperimentRunner()

    scatter = [
        svgplot.ScatterSeries(
            label=series.prefetcher,
            points=[(p.scope, p.accuracy, p.weight)
                    for p in series.points],
        )
        for series in fig01.run(runner, apps=APPS)
    ]
    path = os.path.join(output_dir, "fig01_small.svg")
    with open(path, "w") as handle:
        handle.write(svgplot.scatter_svg(
            scatter, title="Fig. 1 (subset) — accuracy vs scope"
        ))
    print("wrote", path)

    traffic = fig09.run(runner, apps=APPS, prefetchers=["bop", "sms", "tpc"])
    path = os.path.join(output_dir, "fig09_small.svg")
    with open(path, "w") as handle:
        handle.write(svgplot.bars_svg(
            {r.prefetcher: r.geomean for r in traffic},
            ranges={r.prefetcher: (r.low, r.high) for r in traffic},
            title="Fig. 9 (subset) — normalized traffic",
            y_label="traffic vs no-prefetch",
        ))
    print("wrote", path)


if __name__ == "__main__":
    main()
