"""Quickstart: simulate one workload under several prefetchers.

Run with::

    python examples/quickstart.py

Builds a SPEC-like streaming workload, simulates it with no prefetcher,
with the classic PC-stride prefetcher, and with the paper's TPC
composite, and prints the comparison.
"""

from repro import make_prefetcher, simulate
from repro.analysis.report import format_table
from repro.workloads import get_workload


def main() -> None:
    trace = get_workload("spec.libquantum").trace()
    print(f"workload: {trace.name} ({len(trace)} instructions)")

    baseline = simulate(trace)
    rows = []
    for name in ["none", "stride", "bop", "tpc"]:
        result = simulate(trace, make_prefetcher(name))
        rows.append(
            (
                name,
                result.cycles,
                result.speedup_over(baseline),
                result.l1d.demand_misses,
                result.prefetch.issued,
                result.l1d.useful_prefetches,
                result.dram_traffic,
            )
        )
    print(
        format_table(
            ["prefetcher", "cycles", "speedup", "L1 misses", "issued",
             "useful", "traffic"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
