"""Build your own prefetcher component and composite it with TPC.

The paper's thesis is that composite prefetching "lowers the barrier to
innovation": a new component only needs high accuracy on a *focused*
pattern, because the coordinator keeps it away from everyone else's
work.  This example writes a tiny component from scratch — a
negative-stride specialist — registers it behind TPC, and measures the
marginal effect, exactly the Fig. 14/15 methodology.
"""

from repro import make_prefetcher, simulate
from repro.analysis.report import format_table
from repro.core.base import AccessEvent, Prefetcher, PrefetchRequest
from repro.core.composite import make_tpc
from repro.isa import Assembler, Machine


class ReverseSweepPrefetcher(Prefetcher):
    """A deliberately narrow component: descending line sweeps only.

    It tracks the last two miss lines globally and, on a descending
    run, prefetches the next few lines downward.  Low scope, high
    accuracy on its pattern — a model citizen of a composite design.
    """

    name = "revsweep"

    def __init__(self, degree: int = 4) -> None:
        self.degree = degree
        self._last = None
        self._descending = 0

    def reset(self) -> None:
        self._last = None
        self._descending = 0

    def on_access(self, event: AccessEvent):
        if event.hit:
            return None
        line = event.line
        if self._last is not None and line == self._last - 1:
            self._descending += 1
        else:
            self._descending = 0
        self._last = line
        if self._descending < 2:
            return None
        return [
            PrefetchRequest(line - k, 1, self.name)
            for k in range(1, self.degree + 1)
            if line - k >= 0
        ]


def reverse_sweep_workload():
    asm = Assembler(name="reverse_sweep")
    elements = 20000
    base = 0x100000
    asm.movi("r1", base + elements * 8)
    asm.movi("r2", base)
    loop = asm.label()
    asm.addi("r1", "r1", -8)
    asm.load("r4", "r1", 0)
    asm.add("r3", "r3", "r4")
    asm.bge("r1", "r2", loop)
    asm.halt()
    return Machine(max_instructions=150_000).run(asm.assemble())


def main() -> None:
    trace = reverse_sweep_workload()
    baseline = simulate(trace)
    configurations = {
        "tpc": make_prefetcher("tpc"),
        "revsweep alone": ReverseSweepPrefetcher(),
        "tpc + revsweep": make_tpc(extras=[ReverseSweepPrefetcher()]),
    }
    rows = []
    for label, prefetcher in configurations.items():
        result = simulate(trace, prefetcher)
        rows.append(
            (
                label,
                result.speedup_over(baseline),
                result.l1d.demand_misses,
                result.prefetch.issued,
                dict(result.prefetch.by_component),
            )
        )
    print(format_table(
        ["configuration", "speedup", "L1 misses", "issued", "by component"],
        rows,
    ))
    print()
    print("T2 handles descending strides too (a stride is a stride), so")
    print("the marginal gain here shows how the coordinator arbitrates")
    print("between overlapping experts — swap in a pattern T2 cannot see")
    print("(e.g. value-correlated) to watch the extra component win scope.")


if __name__ == "__main__":
    main()
