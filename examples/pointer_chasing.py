"""Pointer-chasing scenario: where P1's two patterns live.

Builds the paper's Fig. 5 data structures directly with the workload
builders — an array of pointers and linked lists in three memory layouts
— and shows how P1 (and the full TPC) handle them compared to a
state-of-the-art monolithic prefetcher.  Also demonstrates the
scope/effective-accuracy metrics from Sec. III.
"""

from repro import make_prefetcher, simulate
from repro.analysis.metrics import effective_accuracy, scope
from repro.analysis.report import format_table
from repro.isa import Assembler, Machine
from repro.workloads import builders
from repro.workloads.builders import Allocator


def build(name, emit):
    asm = Assembler(name=name)
    alloc = Allocator()
    emit(asm, alloc)
    asm.halt()
    return Machine(max_instructions=150_000).run(asm.assemble())


def main() -> None:
    scenarios = {
        "array_of_pointers": lambda asm, alloc: builders.array_of_pointers(
            asm, alloc, count=8000, object_bytes=256, work=1
        ),
        "list_sequential": lambda asm, alloc: builders.linked_list(
            asm, alloc, nodes=8000, layout="sequential", work=1
        ),
        "list_clustered": lambda asm, alloc: builders.linked_list(
            asm, alloc, nodes=8000, layout="clustered", work=1
        ),
        "list_scattered": lambda asm, alloc: builders.linked_list(
            asm, alloc, nodes=8000, layout="scattered", work=1
        ),
    }
    rows = []
    for scenario, emit in scenarios.items():
        trace = build(scenario, emit)
        baseline = simulate(trace)
        for name in ["p1", "tpc", "spp"]:
            result = simulate(trace, make_prefetcher(name))
            rows.append(
                (
                    scenario,
                    name,
                    result.speedup_over(baseline),
                    scope(result, baseline),
                    effective_accuracy(result, baseline),
                    result.prefetch.issued,
                )
            )
    print(format_table(
        ["scenario", "prefetcher", "speedup", "scope", "eff_accuracy",
         "issued"],
        rows,
    ))
    print()
    print("Note the paper's P1 portrait: limited scope, very high")
    print("accuracy; sequential lists instead fall to T2 inside TPC.")


if __name__ == "__main__":
    main()
