"""Fig. 11 — speedups across all benchmark suites, including 4-core
mixes.

Paper: the SPEC conclusion generalizes — over all 68 workloads TPC
reaches 1.39 geomean vs 1.22-1.31 for the others.
"""

from _bench_util import show

from repro.analysis.metrics import geometric_mean
from repro.experiments import fig11
from repro.prefetcher_registry import PAPER_MONOLITHIC


def test_fig11_all_suites(benchmark, runner):
    results = benchmark.pedantic(
        lambda: fig11.run(runner, mix_count=3), rounds=1, iterations=1
    )
    show("Fig. 11 — speedups per suite", fig11.render(results))

    # Overall geomean across suites: TPC on top.
    def overall(prefetcher):
        return geometric_mean([r.geomeans[prefetcher] for r in results])

    tpc = overall("tpc")
    monolithic = {name: overall(name) for name in PAPER_MONOLITHIC}
    assert tpc > max(monolithic.values()), (tpc, monolithic)

    # TPC never falls below 1.0 in any suite (broadly effective).
    for suite_result in results:
        assert suite_result.geomeans["tpc"] > 0.99, suite_result
