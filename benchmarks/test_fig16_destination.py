"""Fig. 16 — prefetch destination: L2-only, L1-only, or stratified.

Paper: L1 beats L2 on average for most prefetchers; per-category
stratification (LHF -> L1, rest -> L2) does best — and TPC gets that
stratification for free from its components.
"""

from _bench_util import show

from repro.experiments import fig16


def test_fig16_destinations(benchmark, runner):
    rows = benchmark.pedantic(
        lambda: fig16.run(runner), rounds=1, iterations=1
    )
    show("Fig. 16 — prefetch destination", fig16.render(rows))

    by_key = {(r.prefetcher, r.mode): r for r in rows}
    prefetchers = sorted({r.prefetcher for r in rows})

    # The paper's ordering — stratified >= L1 >= L2 — should hold for
    # the clear majority of prefetchers.  (GHB-style miss-triggered
    # replay pollutes the scaled-down L1 and prefers L2; one such
    # outlier is tolerated.)
    l1_beats_l2 = sum(
        1 for p in prefetchers
        if by_key[(p, "L1")].average >= by_key[(p, "L2")].average - 0.01
    )
    stratified_best = sum(
        1 for p in prefetchers
        if by_key[(p, "stratified")].average
        >= max(by_key[(p, "L1")].average,
               by_key[(p, "L2")].average) - 0.01
    )
    assert l1_beats_l2 >= len(prefetchers) - 2, (l1_beats_l2, prefetchers)
    assert stratified_best >= len(prefetchers) - 2, stratified_best

    # TPC's native (component-based) stratification is at least as good
    # as forcing all its prefetches into L2.
    assert (
        by_key[("tpc", "stratified")].average
        >= by_key[("tpc", "L2")].average - 0.02
    )
