"""Fig. 9 — memory traffic normalized to no prefetching.

Paper: TPC adds the least traffic (~6% overhead); the next best (BOP)
adds 12%.
"""

from _bench_util import show

from repro.experiments import fig09


def test_fig09_traffic(benchmark, runner):
    rows = benchmark.pedantic(
        lambda: fig09.run(runner), rounds=1, iterations=1
    )
    show("Fig. 9 — normalized memory traffic", fig09.render(rows))
    overhead = {r.prefetcher: r.geomean for r in rows}

    # TPC has the smallest average traffic overhead of all prefetchers.
    assert overhead["tpc"] == min(overhead.values()), overhead
    # And it is small in absolute terms (paper: 1.06).
    assert overhead["tpc"] < 1.10
    # Every prefetcher's overhead stays within a sane band.
    for name, value in overhead.items():
        assert 0.9 < value < 2.0, (name, value)
