"""Fig. 8 — per-application speedups of all prefetchers (SPEC-like
suite).

Paper: TPC geomean 1.41 vs 1.21-1.33 for the seven monolithic designs;
best in 11/21 apps, within 5% of the best elsewhere.
"""

from _bench_util import show

from repro.experiments import fig08
from repro.prefetcher_registry import PAPER_MONOLITHIC


def test_fig08_speedups(benchmark, runner):
    grid = benchmark.pedantic(
        lambda: fig08.run(runner), rounds=1, iterations=1
    )
    show("Fig. 8 — per-application speedups", fig08.render(grid))

    tpc = grid.geomean("tpc")
    monolithic = {name: grid.geomean(name) for name in PAPER_MONOLITHIC}
    best_monolithic = max(monolithic.values())

    # Headline: TPC outperforms every monolithic design on average.
    assert tpc > best_monolithic, (tpc, monolithic)
    # All prefetchers help on average (speedups in a plausible band).
    for name, value in monolithic.items():
        assert 0.9 < value < tpc + 1.0, (name, value)
    # TPC is the single best performer in a plurality of benchmarks.
    best_counts = {p: grid.best_count(p) for p in grid.prefetchers}
    assert best_counts["tpc"] == max(best_counts.values()), best_counts
