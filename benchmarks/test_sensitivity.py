"""Sensitivity bench: the headline ordering under provisioning sweeps."""

from collections import defaultdict

from _bench_util import show

from repro.experiments import sensitivity


def _by_value(points):
    table = defaultdict(dict)
    for p in points:
        table[p.value][p.prefetcher] = p.speedup
    return table


def _assert_stable(table):
    """The comparison's shape must not be a provisioning artifact: TPC
    stays within 10% of the best (SPP edges it on this small subset via
    one outlier app, see EXPERIMENTS.md) and clearly ahead of BOP at
    every point."""
    for value, row in table.items():
        best = max(row.values())
        assert row["tpc"] >= best * 0.90, (value, row)
        assert row["tpc"] > row["bop"], (value, row)


def test_l3_size_sweep(benchmark):
    points = benchmark.pedantic(
        sensitivity.run_l3_sweep, rounds=1, iterations=1
    )
    show("Sensitivity — L3 capacity sweep", sensitivity.render(points))
    _assert_stable(_by_value(points))


def test_mshr_sweep(benchmark):
    points = benchmark.pedantic(
        sensitivity.run_mshr_sweep, rounds=1, iterations=1
    )
    show("Sensitivity — MSHR count sweep", sensitivity.render(points))
    table = _by_value(points)
    _assert_stable(table)
    # More MSHRs never hurt TPC.
    counts = sorted(table)
    assert table[counts[-1]]["tpc"] >= table[counts[0]]["tpc"] - 0.05
