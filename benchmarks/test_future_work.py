"""Future-work bench: an extra HHF component (Markov) behind TPC's
coordinator (the paper's recap item 3, implemented)."""

from _bench_util import show

from repro.analysis.metrics import geometric_mean
from repro.experiments import future_work


def test_future_work_markov_component(benchmark, runner):
    rows = benchmark.pedantic(
        lambda: future_work.run(runner), rounds=1, iterations=1
    )
    show("Future work — TPC + Markov component on HHF-heavy apps",
         future_work.render(rows))

    for extra in sorted({r.extra for r in rows}):
        marginal = geometric_mean(
            [r.marginal for r in rows if r.extra == extra]
        )
        # Adding a specialized HHF component behind the coordinator must
        # not hurt TPC (division of labor keeps it off everyone's turf).
        assert marginal > 0.97, (extra, marginal)
    # And TPC(+extra) never loses badly to the extra working alone.
    for row in rows:
        assert row.tpc_plus_extra >= row.extra_alone * 0.9, row
