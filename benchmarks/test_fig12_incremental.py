"""Fig. 12 — effective accuracy/coverage vs scope at L1 and L2, with TPC
built up incrementally (T2 -> T2+P1 -> TPC).

Paper: each added component extends TPC's scope; TPC's L1 effective
coverage beats the monolithic designs despite fewer prefetches, because
of better accuracy.
"""

from _bench_util import show

from repro.experiments import fig12


def test_fig12_incremental(benchmark, runner):
    rows = benchmark.pedantic(
        lambda: fig12.run(runner), rounds=1, iterations=1
    )
    show("Fig. 12 — accuracy/coverage vs scope at L1 and L2",
         fig12.render(rows))

    l1 = {r.label: r for r in rows if r.level == 1}

    # Scope grows as components are added.
    assert l1["T2"].scope <= l1["T2+P1"].scope + 0.02
    assert l1["T2+P1"].scope <= l1["TPC"].scope + 0.02

    # TPC's L1 accuracy tops every monolithic entry.
    monolithic_accuracy = [
        r.accuracy for label, r in l1.items()
        if label not in ("T2", "T2+P1", "TPC")
    ]
    assert l1["TPC"].accuracy > max(monolithic_accuracy)

    # TPC achieves its coverage with fewer issued prefetches than the
    # highest-volume monolithic prefetcher.
    monolithic_issued = [
        r.issued for label, r in l1.items()
        if label not in ("T2", "T2+P1", "TPC")
    ]
    assert l1["TPC"].issued < max(monolithic_issued)
