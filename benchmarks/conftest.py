"""Shared fixtures for the benchmark harness.

One :class:`~repro.experiments.runner.ExperimentRunner` is shared across
all benchmark modules so (workload, prefetcher) simulations are reused —
fig08's speedup runs are the same simulations fig09 reads traffic from,
exactly like a real evaluation campaign.
"""

import pytest

from repro.experiments.runner import ExperimentRunner


@pytest.fixture(scope="session")
def runner():
    return ExperimentRunner()
