"""Component-replacement bench (paper Sec. V-C2's executable check)."""

from _bench_util import show

from repro.experiments import component_swap


def test_component_swap(benchmark, runner):
    rows = benchmark.pedantic(
        lambda: component_swap.run(runner), rounds=1, iterations=1
    )
    show("Component replacement (Sec. V-C2)", component_swap.render(rows))

    by_variant = {r.variant: r for r in rows}
    tpc = by_variant["tpc"].speedup
    # The paper found no replacement case among its candidates; on this
    # suite SMS-for-C1 *is* a mild win (~5%, at ~25% more prefetches) —
    # which is the Sec. V-C2 replacement rule working as designed, so the
    # check tolerates it while still rejecting wholesale regressions.
    for variant, row in by_variant.items():
        assert row.speedup <= tpc * 1.10, (variant, row)
        assert row.speedup >= tpc * 0.80, (variant, row)
    # The classic stride table is a strictly weaker T2 stand-in.
    assert by_variant["stride/P1/C1"].speedup <= tpc + 1e-9