"""Fig. 15 — compositing vs shunting an existing prefetcher with TPC.

Paper: composited extras never hurt and average 3-8% over TPC alone;
shunting is almost always worse than TPC alone (1-6% on average).
"""

from _bench_util import show

from repro.experiments import fig15


def test_fig15_composite_vs_shunt(benchmark, runner):
    rows = benchmark.pedantic(
        lambda: fig15.run(runner), rounds=1, iterations=1
    )
    show("Fig. 15 — compositing vs shunting (vs TPC alone)",
         fig15.render(rows))

    by_key = {(r.extra, r.mode): r for r in rows}
    for extra in {r.extra for r in rows}:
        composite = by_key[(extra, "composite")]
        shunt = by_key[(extra, "shunt")]
        # Compositing beats shunting for the same pair of engines.
        assert composite.average >= shunt.average - 0.01, (extra,
                                                           composite,
                                                           shunt)
        # Compositing never degrades TPC badly.
        assert composite.average > 0.97, (extra, composite)
