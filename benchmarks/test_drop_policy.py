"""Sec. V-C1 — memory-controller prefetch drop policy (4-core mixes).

Paper: dropping low-probability (C1) prefetches instead of random ones
when the queue fills is worth ~6% on average in a multicore environment.
"""

from _bench_util import show

from repro.analysis.metrics import geometric_mean
from repro.experiments import drop_policy


def test_drop_policy(benchmark):
    results = benchmark.pedantic(
        lambda: drop_policy.run(mix_count=3), rounds=1, iterations=1
    )
    show("Sec. V-C1 — drop policy (random vs C1-first)",
         drop_policy.render(results))

    gains = [r.gain for r in results]
    average_gain = geometric_mean(gains)
    # The C1-first policy should be at worst neutral vs random dropping.
    # (The paper reports +6%; our scaled workloads give C1 a much smaller
    # share of speculative DRAM traffic, so the measurable headroom is
    # ~0-1% — see EXPERIMENTS.md.)
    assert average_gain > 0.97, gains
    # The experiment actually exercised the drop path.
    assert any(r.random_drops > 0 for r in results)
