"""Fig. 13 — effective accuracy and scope by LHF/MHF/HHF category.

Paper: most prefetches are LHF; monolithic HHF accuracy is poor (best
average 38%, many negative) while P1 reaches 86% on limited scope; C1
leads MHF accuracy.
"""

from _bench_util import show

from repro.analysis.classify import Category
from repro.experiments import fig13


def test_fig13_categories(benchmark, runner):
    rows = benchmark.pedantic(
        lambda: fig13.run(runner), rounds=1, iterations=1
    )
    show("Fig. 13 — per-category accuracy and scope", fig13.render(rows))

    table = {(r.prefetcher, r.category): r for r in rows}

    # LHF (strided) lines receive the bulk of prefetches in aggregate,
    # and for the majority of prefetchers individually (some spatially
    # aggressive designs spray HHF on our irregular-heavy suite).
    prefetchers = {r.prefetcher for r in rows}
    lhf_total = sum(table[(p, Category.LHF)].issued for p in prefetchers)
    hhf_total = sum(table[(p, Category.HHF)].issued for p in prefetchers)
    assert lhf_total >= hhf_total, (lhf_total, hhf_total)
    lhf_majority = sum(
        1 for p in prefetchers
        if table[(p, Category.LHF)].issued
        >= table[(p, Category.HHF)].issued
    )
    assert lhf_majority >= len(prefetchers) // 2, lhf_majority

    # TPC's LHF accuracy (T2's domain) is at the top of the field.
    # (TPC's LHF bucket also absorbs C1's region prefetches to strided
    # lines, so a narrow LHF-only monolithic can edge it — allow a 0.10
    # band rather than strict dominance.)
    tpc_lhf = table[("tpc", Category.LHF)].accuracy
    monolithic_lhf = [
        r.accuracy for r in rows
        if r.category is Category.LHF and r.prefetcher != "tpc"
        and r.issued > 0
    ]
    assert tpc_lhf >= max(monolithic_lhf) - 0.10

    # HHF is the hard category: TPC stays clearly positive there.
    tpc_hhf = table[("tpc", Category.HHF)]
    if tpc_hhf.issued > 0:
        assert tpc_hhf.accuracy > 0.0
