"""Fig. 1 — accuracy vs scope for AMPM, BOP, SMS (the motivating
tradeoff).

Paper: scope rises 67% -> 76% -> 87% from AMPM to BOP to SMS while
accuracy falls 58% -> 49% -> 48%.  The reproduction checks the *tradeoff
direction*: the widest-scope prefetcher is not the most accurate.
"""

from _bench_util import show

from repro.experiments import fig01


def test_fig01_scope_vs_accuracy(benchmark, runner):
    series = benchmark.pedantic(
        lambda: fig01.run(runner), rounds=1, iterations=1
    )
    show("Fig. 1 — accuracy vs scope (AMPM/BOP/SMS)", fig01.render(series))
    by_name = {s.prefetcher: s for s in series}
    scopes = {name: s.average_scope for name, s in by_name.items()}
    accuracies = {name: s.average_accuracy for name, s in by_name.items()}

    widest = max(scopes, key=scopes.get)
    most_accurate = max(accuracies, key=accuracies.get)
    assert widest != most_accurate, (
        "scope/accuracy tradeoff should separate the extremes: "
        f"scopes={scopes}, accuracies={accuracies}"
    )
    # All three prefetchers attempt a nontrivial share of the footprint.
    for name, value in scopes.items():
        assert value > 0.2, (name, value)
