"""Ablation bench: the design choices DESIGN.md calls out, each knocked
out or perturbed individually (see repro.experiments.ablations)."""

from _bench_util import show

from repro.experiments import ablations


def test_ablations(benchmark, runner):
    rows = benchmark.pedantic(
        lambda: ablations.run(runner), rounds=1, iterations=1
    )
    show("Ablations — TPC design choices", ablations.render(rows))

    by_variant = {r.variant: r for r in rows}
    full = by_variant["tpc"]

    # The full design is competitive with every ablation (no knob should
    # dominate it by a wide margin; small wins are tolerated since the
    # knobs trade accuracy against scope).
    for variant, row in by_variant.items():
        assert row.speedup > full.speedup * 0.85, (variant, row)

    # Miss-activation is a capacity filter: without it the SIT tracks
    # everything, so the variant must not issue *fewer* prefetches.
    assert by_variant["no-miss-activation"].issued >= full.issued * 0.5

    # The paper claims insensitivity to the strided threshold (relative
    # tolerance: speedups on this suite sit near 2x).
    assert abs(by_variant["strided-8"].speedup - full.speedup) \
        < 0.15 * full.speedup
    assert abs(by_variant["strided-32"].speedup - full.speedup) \
        < 0.15 * full.speedup
