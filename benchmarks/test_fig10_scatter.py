"""Fig. 10 — effective accuracy vs scope, all prefetchers, dots weighted
by prefetches issued.

Paper: monolithic averages span 45-69% accuracy; TPC averages 82% with a
much tighter per-application range — high accuracy over a narrower
scope.
"""

from _bench_util import show

from repro.experiments import fig10
from repro.prefetcher_registry import PAPER_MONOLITHIC


def test_fig10_accuracy_scope(benchmark, runner):
    series = benchmark.pedantic(
        lambda: fig10.run(runner), rounds=1, iterations=1
    )
    show("Fig. 10 — accuracy vs scope summary", fig10.render(series))
    by_name = {s.prefetcher: s for s in series}

    tpc_accuracy = by_name["tpc"].average_accuracy
    monolithic_accuracy = {
        name: by_name[name].average_accuracy for name in PAPER_MONOLITHIC
    }
    # TPC's weighted-average effective accuracy tops every monolithic.
    assert tpc_accuracy > max(monolithic_accuracy.values()), (
        tpc_accuracy, monolithic_accuracy
    )
    # And is high in absolute terms (paper: 0.82).
    assert tpc_accuracy > 0.6
