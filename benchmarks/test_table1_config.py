"""Table I — system configuration (paper parameters vs experiment)."""

from _bench_util import show

from repro.experiments import tables


def test_table1_config(benchmark):
    rows = benchmark.pedantic(tables.run_table1, rounds=1, iterations=1)
    show("Table I — system configuration", tables.render_table1(rows))
    values = {name: (paper, scaled) for name, paper, scaled in rows}
    # Core parameters match Table I exactly.
    assert values["core width"] == ("4", "4")
    assert values["ROB entries"] == ("192", "192")
    assert values["branch miss penalty"] == ("15", "15")
    # Caches are scaled 8x down, same associativity and latency.
    assert values["L1D size/ways"] == ("64KB/4w", "8KB/4w")
    assert values["L3 size/ways"][0] == "2048KB/16w"
