"""Table II — storage cost of the evaluated prefetchers."""

from _bench_util import show

from repro.experiments import tables


def test_table2_storage(benchmark):
    rows = benchmark.pedantic(tables.run_table2, rounds=1, iterations=1)
    show("Table II — prefetcher storage", tables.render_table2(rows))
    by_name = {r.name: r for r in rows}
    # TPC's budget is the sum of its components (paper: 4.57 KB).
    assert abs(
        by_name["tpc"].model_kb
        - (by_name["t2"].model_kb + by_name["p1"].model_kb
           + by_name["c1"].model_kb)
    ) < 0.01
    # Every model is within 3x of the paper's budget.
    for row in rows:
        assert 0.3 < row.ratio < 3.0, row
    # TPC stays a small-budget design (under SMS's 12 KB).
    assert by_name["tpc"].model_kb < by_name["sms"].paper_kb
