"""Fig. 14 — existing prefetchers alone vs as TPC components, inside the
region TPC does not cover.

Paper: effective accuracy in the uncovered region improves for every
prefetcher when composited (SMS: 27% alone -> 43% as component); scope
change is negligible.
"""

from _bench_util import show

from repro.experiments import fig14


def test_fig14_existing_as_components(benchmark, runner):
    rows = benchmark.pedantic(
        lambda: fig14.run(runner), rounds=1, iterations=1
    )
    show("Fig. 14 — alone vs as TPC component (uncovered region)",
         fig14.render(rows))

    by_key = {(r.prefetcher, r.mode): r for r in rows}
    improvements = 0
    comparisons = 0
    for extra in {r.prefetcher for r in rows}:
        alone = by_key[(extra, "alone")]
        component = by_key[(extra, "component")]
        if alone.issued == 0 and component.issued == 0:
            continue
        comparisons += 1
        if component.accuracy >= alone.accuracy - 0.02:
            improvements += 1
    # Division of labor helps (or at worst is neutral) in the uncovered
    # region for the majority of the extras.
    assert comparisons > 0
    assert improvements >= (comparisons + 1) // 2, (improvements,
                                                    comparisons)
