"""Helpers for the benchmark harness."""


def show(title: str, body: str) -> None:
    """Print a rendered experiment table (visible with pytest -s and in
    the captured output of the benchmark log)."""
    print(f"\n=== {title} ===")
    print(body)
