"""Helpers for the benchmark harness."""

from repro.bench import append_bench_log


def show(title: str, body: str, data=None) -> None:
    """Print a rendered experiment table and append it to the shared
    bench log (see :func:`repro.bench.append_bench_log`), so the pytest
    tables and ``repro bench`` reports land in one machine-readable
    stream.  ``data`` optionally carries the structured rows behind the
    rendered table."""
    print(f"\n=== {title} ===")
    print(body)
    record = {"kind": "table", "title": title, "body": body}
    if data is not None:
        record["data"] = data
    append_bench_log(record)
